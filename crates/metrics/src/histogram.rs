//! A log-linear latency histogram.

use asyncinv_simcore::SimDuration;

/// Number of linear sub-buckets per power-of-two bucket. 32 gives about
/// 1/32 ≈ 3% worst-case relative error, plenty for reproducing shapes.
const SUBBUCKETS: u64 = 32;

/// A log-linear histogram of durations.
///
/// Values are bucketed into powers of two split into 32 linear
/// sub-buckets, HdrHistogram-style, so memory stays constant regardless of
/// sample count while percentiles remain accurate to a few percent.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum_nanos: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let v = d.as_nanos();
        let idx = Self::index_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_nanos += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (exact, not bucketed).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_nanos / self.count as u128) as u64)
    }

    /// Smallest recorded sample (exact).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// The value at quantile `q` (bucket upper bound, ≤3% relative error).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(Self::upper_bound(i).min(self.max));
            }
        }
        SimDuration::from_nanos(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum_nanos = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    fn index_of(v: u64) -> usize {
        if v < SUBBUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // v >= 32 so msb >= 5
        let shift = msb - SUBBUCKETS.trailing_zeros() as u64; // msb - 5
        let sub = (v >> shift) - SUBBUCKETS; // 0..SUBBUCKETS
        (shift * SUBBUCKETS + SUBBUCKETS + sub) as usize
    }

    /// Inclusive upper bound of bucket `i` (the largest value mapping there).
    fn upper_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < SUBBUCKETS {
            return i;
        }
        let shift = (i - SUBBUCKETS) / SUBBUCKETS;
        let sub = (i - SUBBUCKETS) % SUBBUCKETS;
        ((SUBBUCKETS + sub + 1) << shift) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    #[test]
    fn exact_below_subbucket_count() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(ns(v));
        }
        assert_eq!(h.min().as_nanos(), 0);
        assert_eq!(h.max().as_nanos(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn index_and_bound_are_consistent() {
        // Every value must land in a bucket whose upper bound is >= value
        // and within ~3.2% of it.
        for v in [
            1u64, 31, 32, 33, 63, 64, 100, 1_000, 65_536, 1_000_000, 123_456_789,
        ] {
            let idx = Histogram::index_of(v);
            let ub = Histogram::upper_bound(idx);
            assert!(ub >= v, "v={v} idx={idx} ub={ub}");
            assert!(
                (ub - v) as f64 <= 0.04 * v as f64 + 1.0,
                "v={v} ub={ub} too coarse"
            );
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(ns(100));
        h.record(ns(300));
        assert_eq!(h.mean().as_nanos(), 200);
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_micros();
        let p99 = h.quantile(0.99).as_micros();
        assert!((480..=530).contains(&p50), "p50={p50}");
        assert!((960..=1020).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0).as_micros(), 1000);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(ns(10));
        b.record(ns(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_nanos(), 10);
        assert_eq!(a.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(ns(5));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn max_never_below_reported_quantile() {
        let mut h = Histogram::new();
        for i in 0..100u64 {
            h.record(ns(i * 7 + 3));
        }
        assert!(h.quantile(0.999) <= h.max());
    }
}
