//! Plain-text table rendering for the experiment harnesses.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A plain-text table with a header row, used by the `fig*`/`table*`
/// binaries to print paper-style rows.
///
/// ```
/// use asyncinv_metrics::{Table, Align};
///
/// let mut t = Table::new(vec!["server".into(), "tput [req/s]".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["sTomcat-Sync".into(), "35000".into()]);
/// t.row(vec!["SingleT-Async".into(), "42800".into()]);
/// let s = t.to_string();
/// assert!(s.contains("sTomcat-Sync"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        let n = header.len();
        Table {
            header,
            aligns: vec![Align::Left; n],
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, a: Align) -> &mut Self {
        self.aligns[col] = a;
        self
    }

    /// Right-aligns every column except the first (the usual label+numbers
    /// layout).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut s = self.header.join(",");
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals; convenience for building rows.
///
/// ```
/// assert_eq!(asyncinv_metrics::fmt_f64(1.23456, 2), "1.23");
/// ```
pub fn fmt_f64(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.numeric();
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numbers: "1" ends at the same column as "12345".
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn csv_export() {
        let csv = sample().to_csv();
        assert_eq!(csv, "name,value\na,1\nlong-name,12345\n");
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    #[should_panic]
    fn empty_header_panics() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn fmt_f64_precision() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(10.0, 0), "10");
    }

    #[test]
    fn len_tracks_rows() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
