//! Saturation-knee detection for load sweeps.
//!
//! The paper's Fig 1 claim is about *where systems saturate* ("SYS_tomcatV7
//! saturates at workload 11000 while SYS_tomcatV8 saturates at 9000").
//! This module finds that knee automatically from a (load, throughput,
//! response-time) sweep so the harness can report it instead of leaving
//! the reader to eyeball a table.

/// One point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load (users, connections, ...).
    pub load: f64,
    /// Measured throughput at that load.
    pub throughput: f64,
    /// Mean response time at that load, in any consistent unit.
    pub response_time: f64,
}

/// Finds the saturation knee of a load sweep: the first point where
/// throughput stops tracking offered load (marginal gain below
/// `gain_threshold` of the ideal slope) **or** the response time exceeds
/// `rt_factor`× the minimum observed response time. Returns the index of
/// the knee point, or `None` if the sweep never saturates.
///
/// Points must be sorted by increasing load.
///
/// ```
/// use asyncinv_metrics::{find_knee, SweepPoint};
/// let sweep: Vec<SweepPoint> = [
///     (1000.0, 140.0, 3.0),
///     (3000.0, 430.0, 3.0),
///     (5000.0, 700.0, 3.5),
///     (7000.0, 990.0, 4.0),
///     (9000.0, 1280.0, 6.0),
///     (11000.0, 1530.0, 250.0), // RT blows up: saturation
///     (13000.0, 1520.0, 1600.0),
/// ]
/// .iter()
/// .map(|&(load, throughput, response_time)| SweepPoint { load, throughput, response_time })
/// .collect();
/// assert_eq!(find_knee(&sweep, 0.3, 10.0), Some(5));
/// ```
///
/// # Panics
///
/// Panics if the points are not strictly increasing in load.
pub fn find_knee(points: &[SweepPoint], gain_threshold: f64, rt_factor: f64) -> Option<usize> {
    if points.len() < 2 {
        return None;
    }
    let rt_min = points
        .iter()
        .map(|p| p.response_time)
        .fold(f64::INFINITY, f64::min);
    // Ideal slope: throughput per unit load in the uncongested region
    // (taken from the first segment).
    let first = &points[0];
    let ideal_slope = if first.load > 0.0 {
        first.throughput / first.load
    } else {
        let second = &points[1];
        assert!(second.load > first.load, "points must be sorted by load");
        (second.throughput - first.throughput) / (second.load - first.load)
    };
    for i in 1..points.len() {
        let (a, b) = (&points[i - 1], &points[i]);
        assert!(b.load > a.load, "points must be sorted by load");
        let marginal = (b.throughput - a.throughput) / (b.load - a.load);
        if ideal_slope > 0.0 && marginal < gain_threshold * ideal_slope {
            return Some(i);
        }
        if rt_min > 0.0 && b.response_time > rt_factor * rt_min {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(load: f64, tput: f64, rt: f64) -> SweepPoint {
        SweepPoint {
            load,
            throughput: tput,
            response_time: rt,
        }
    }

    #[test]
    fn linear_sweep_has_no_knee() {
        let pts: Vec<_> = (1..=5).map(|i| p(i as f64, i as f64 * 10.0, 1.0)).collect();
        assert_eq!(find_knee(&pts, 0.3, 10.0), None);
    }

    #[test]
    fn flat_throughput_is_a_knee() {
        let pts = vec![p(1.0, 100.0, 1.0), p(2.0, 200.0, 1.0), p(3.0, 205.0, 1.2)];
        assert_eq!(find_knee(&pts, 0.3, 10.0), Some(2));
    }

    #[test]
    fn rt_blowup_is_a_knee_even_with_rising_throughput() {
        let pts = vec![p(1.0, 100.0, 1.0), p(2.0, 200.0, 1.1), p(3.0, 290.0, 25.0)];
        assert_eq!(find_knee(&pts, 0.3, 10.0), Some(2));
    }

    #[test]
    fn earlier_knee_wins() {
        let pts = vec![
            p(1.0, 100.0, 1.0),
            p(2.0, 105.0, 1.0), // flat already
            p(3.0, 106.0, 50.0),
        ];
        assert_eq!(find_knee(&pts, 0.3, 10.0), Some(1));
    }

    #[test]
    fn too_few_points() {
        assert_eq!(find_knee(&[p(1.0, 10.0, 1.0)], 0.3, 10.0), None);
        assert_eq!(find_knee(&[], 0.3, 10.0), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_points_panic() {
        let pts = vec![p(2.0, 10.0, 1.0), p(1.0, 20.0, 1.0)];
        let _ = find_knee(&pts, 0.3, 10.0);
    }
}
