//! Throughput measurement over a time window.

use asyncinv_simcore::{SimDuration, SimTime};

/// Counts request completions inside a measurement window and in 1-second
/// buckets, like the JMeter summariser the paper's figures are drawn from.
///
/// ```
/// use asyncinv_metrics::ThroughputWindow;
/// use asyncinv_simcore::SimTime;
///
/// let mut w = ThroughputWindow::new(SimTime::from_secs(1), SimTime::from_secs(11));
/// for i in 0..1000 {
///     w.record(SimTime::from_millis(1_000 + i * 10)); // one per 10 ms
/// }
/// assert_eq!(w.completions(), 1000);
/// assert!((w.rate_per_sec() - 100.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputWindow {
    start: SimTime,
    end: SimTime,
    completions: u64,
    ignored: u64,
    buckets: Vec<u64>,
}

impl ThroughputWindow {
    /// Creates a window measuring `[start, end)`. Completions outside the
    /// window are counted separately (warm-up / drain traffic).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "window must have positive length");
        let secs = end.duration_since(start).as_nanos().div_ceil(1_000_000_000) as usize;
        ThroughputWindow {
            start,
            end,
            completions: 0,
            ignored: 0,
            buckets: vec![0; secs],
        }
    }

    /// Window start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Window end.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Records a completion at `t`.
    pub fn record(&mut self, t: SimTime) {
        if t < self.start || t >= self.end {
            self.ignored += 1;
            return;
        }
        self.completions += 1;
        let idx = (t.duration_since(self.start).as_nanos() / 1_000_000_000) as usize;
        self.buckets[idx] += 1;
    }

    /// Completions inside the window.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Completions outside the window (warm-up and drain).
    pub fn ignored(&self) -> u64 {
        self.ignored
    }

    /// Average completion rate over the window, per second.
    pub fn rate_per_sec(&self) -> f64 {
        let len = self.end.duration_since(self.start);
        if len.is_zero() {
            return 0.0;
        }
        self.completions as f64 / len.as_secs_f64()
    }

    /// Per-second completion counts (for saturation/stability checks).
    pub fn per_second(&self) -> &[u64] {
        &self.buckets
    }

    /// Coefficient of variation of the per-second buckets, skipping
    /// incomplete trailing buckets. Near zero means the run reached steady
    /// state; experiments assert on this.
    pub fn rate_cv(&self) -> f64 {
        let full_secs = (self.end.duration_since(self.start).as_nanos() / 1_000_000_000) as usize;
        let data = &self.buckets[..full_secs.min(self.buckets.len())];
        if data.len() < 2 {
            return 0.0;
        }
        let mean = data.iter().sum::<u64>() as f64 / data.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = data
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        var.sqrt() / mean
    }

    /// The window length.
    pub fn len(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// `true` if no completions were recorded inside the window.
    pub fn is_empty(&self) -> bool {
        self.completions == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_inside_window() {
        let mut w = ThroughputWindow::new(SimTime::from_secs(1), SimTime::from_secs(2));
        w.record(SimTime::from_millis(500)); // warm-up
        w.record(SimTime::from_millis(1500)); // inside
        w.record(SimTime::from_secs(2)); // boundary: outside (half-open)
        assert_eq!(w.completions(), 1);
        assert_eq!(w.ignored(), 2);
    }

    #[test]
    fn rate_is_per_second() {
        let mut w = ThroughputWindow::new(SimTime::ZERO, SimTime::from_secs(4));
        for i in 0..400u64 {
            w.record(SimTime::from_millis(i * 10));
        }
        assert!((w.rate_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_second_buckets() {
        let mut w = ThroughputWindow::new(SimTime::ZERO, SimTime::from_secs(3));
        w.record(SimTime::from_millis(100));
        w.record(SimTime::from_millis(1100));
        w.record(SimTime::from_millis(1200));
        assert_eq!(w.per_second(), &[1, 2, 0]);
    }

    #[test]
    fn cv_zero_for_steady_rate() {
        let mut w = ThroughputWindow::new(SimTime::ZERO, SimTime::from_secs(5));
        for s in 0..5u64 {
            for i in 0..10u64 {
                w.record(SimTime::from_millis(s * 1000 + i * 50));
            }
        }
        assert!(w.rate_cv() < 1e-9);
    }

    #[test]
    fn cv_positive_for_bursty_rate() {
        let mut w = ThroughputWindow::new(SimTime::ZERO, SimTime::from_secs(4));
        for i in 0..100u64 {
            w.record(SimTime::from_millis(i)); // all in second 0
        }
        assert!(w.rate_cv() > 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        let _ = ThroughputWindow::new(SimTime::from_secs(1), SimTime::from_secs(1));
    }
}
