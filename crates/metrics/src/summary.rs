//! Experiment result records.

use asyncinv_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// CPU utilization shares over a run, normalized to machine capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CpuShare {
    /// User-space share of total capacity, `[0, 1]`.
    pub user: f64,
    /// System (syscall + switch overhead) share of capacity, `[0, 1]`.
    pub sys: f64,
    /// Idle share of capacity, `[0, 1]`.
    pub idle: f64,
}

impl CpuShare {
    /// Busy fraction (user + sys).
    pub fn utilization(&self) -> f64 {
        self.user + self.sys
    }

    /// User share of busy time (the paper's Table III normalization).
    pub fn user_share_of_busy(&self) -> f64 {
        let busy = self.utilization();
        if busy == 0.0 {
            0.0
        } else {
            self.user / busy
        }
    }
}

/// Per-request-class results within a run (the paper's Fig 11 analysis
/// distinguishes heavy and light requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassSummary {
    /// Class name, shared with the workload mix's interned name (cloning
    /// an `Arc<str>` is a refcount bump, not a string allocation).
    pub class: Arc<str>,
    /// Response size of the class in bytes (initial size for drifting
    /// classes).
    pub response_bytes: usize,
    /// Completions of this class in the measurement window.
    pub completions: u64,
    /// Mean response time of this class, microseconds.
    pub mean_rt_us: u64,
    /// 99th percentile response time of this class, microseconds.
    pub p99_rt_us: u64,
}

/// One experiment cell: everything the paper reports about a single
/// (server, workload, network) combination.
///
/// ```
/// use asyncinv_metrics::RunSummary;
/// let s = RunSummary { server: "SingleT-Async".into(), ..RunSummary::default() };
/// assert_eq!(s.server, "SingleT-Async");
/// assert_eq!(s.mean_rt().as_micros(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunSummary {
    /// Server architecture label (e.g. `"SingleT-Async"`).
    pub server: String,
    /// Workload concurrency (number of closed-loop users).
    pub concurrency: usize,
    /// Response size in bytes of the dominant request class.
    pub response_size: usize,
    /// Added one-way network latency in microseconds.
    pub added_latency_us: u64,
    /// Completed requests in the measurement window.
    pub completions: u64,
    /// Throughput in requests/second.
    pub throughput: f64,
    /// Mean response time in microseconds.
    pub mean_rt_us: u64,
    /// Median response time in microseconds.
    pub p50_rt_us: u64,
    /// 95th percentile response time in microseconds.
    pub p95_rt_us: u64,
    /// 99th percentile response time in microseconds.
    pub p99_rt_us: u64,
    /// Context switches per second over the window.
    pub cs_per_sec: f64,
    /// Context switches per completed request.
    pub cs_per_req: f64,
    /// `socket.write()` calls per completed request (the paper's Table IV).
    pub writes_per_req: f64,
    /// Zero-return writes (spins) per completed request.
    pub spins_per_req: f64,
    /// CPU utilization shares.
    pub cpu: CpuShare,
    /// Coefficient of variation of per-second throughput (near zero at
    /// steady state; experiments assert on it).
    pub rate_cv: f64,
    /// Open-loop arrivals dropped because every connection was busy,
    /// within the measurement window. Zero in closed-loop runs.
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "maintained by the client pool via dropped snapshot deltas, not a += site in the engines")
    // detlint::allow(counter-unaudited, reason = "RequestArrive disposition is a written waiver; open-loop drops are bounded by completions + shed counters")
    pub dropped_arrivals: u64,
    /// Client-side request timeouts within the window (resilience layer;
    /// zero when no retry policy is configured).
    #[serde(default)]
    pub timeouts: u64,
    /// Retries scheduled within the window.
    #[serde(default)]
    pub retries: u64,
    /// Requests the client gave up on (retries/budget exhausted or an
    /// abandonment fault) within the window.
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "maintained by the client pool via abandoned snapshot deltas, not a += site in the engines")
    pub abandoned: u64,
    /// Reject-fast error responses issued by the server within the window.
    #[serde(default)]
    pub rejected: u64,
    /// Arrivals dropped or evicted by server-side load shedding within the
    /// window.
    #[serde(default)]
    pub shed_dropped: u64,
    /// Fault-plan actions applied within the window.
    #[serde(default)]
    pub fault_events: u64,
    /// Request attempts routed to a shard by the fleet balancer within the
    /// window. Zero outside multi-shard fleet runs (a 1-shard fleet stays
    /// bit-identical to the bare engine and routes nothing).
    #[serde(default)]
    pub shard_routes: u64,
    /// Hedged duplicate attempts fired within the window.
    #[serde(default)]
    pub hedges: u64,
    /// Hedged attempts cancelled (loser of the pair, or killed by a fault)
    /// within the window.
    #[serde(default)]
    pub hedge_cancels: u64,
    /// Retries routed to a different shard than the failed attempt within
    /// the window.
    #[serde(default)]
    pub shard_retries: u64,
    /// SQEs staged into proactor submission rings within the window.
    /// Zero for the seven syscall-per-op architectures.
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "aggregated from UringCounters via sq_submits += ud.sq_submits; the increment site is conserved in crates/uring")
    pub sq_submits: u64,
    /// Proactor `io_uring_enter` flush crossings within the window (each
    /// is exactly one modeled kernel crossing, however many SQEs it
    /// carried).
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "aggregated from UringCounters via sq_flushes += ud.sq_flushes; the increment site is conserved in crates/uring")
    pub sq_flushes: u64,
    /// Proactor completion-ring reap passes within the window.
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "aggregated from UringCounters via cq_reaps += ud.cq_reaps; the increment site is conserved in crates/uring")
    pub cq_reaps: u64,
    /// Staging attempts that hit a full submission ring (SQ-full
    /// backpressure) within the window.
    #[serde(default)]
    // detlint::allow(counter-dead, reason = "aggregated from UringCounters via sq_full += ud.sq_full; the increment site is conserved in crates/uring")
    pub sq_full: u64,
    /// Modeled kernel crossings (syscall-burst submissions) per completed
    /// request — the uniform metric the proactor's batched submission
    /// moves, comparable across all architectures.
    #[serde(default)]
    pub crossings_per_req: f64,
    /// Per-request-class breakdown, in mix order.
    pub per_class: Vec<ClassSummary>,
}

impl RunSummary {
    /// Mean response time as a duration.
    pub fn mean_rt(&self) -> SimDuration {
        SimDuration::from_micros(self.mean_rt_us)
    }

    /// Relative throughput versus a baseline run (`self / base`).
    ///
    /// Returns 0 when the baseline throughput is zero.
    pub fn speedup_over(&self, base: &RunSummary) -> f64 {
        if base.throughput == 0.0 {
            0.0
        } else {
            self.throughput / base.throughput
        }
    }
}

/// Relative residual of Little's law `N = X * R` for a closed system with
/// `n` users, throughput `x` (req/s) and mean response time `rt`.
///
/// Near zero when the workload generator, server and clock agree; the
/// integration tests assert it stays below a few percent at saturation
/// (with zero think time `N = X·R` exactly).
///
/// ```
/// use asyncinv_metrics::littles_law_residual;
/// use asyncinv_simcore::SimDuration;
/// // 100 users, 1000 req/s, 100 ms each: N = X*R holds exactly.
/// let r = littles_law_residual(100, 1000.0, SimDuration::from_millis(100));
/// assert!(r.abs() < 1e-9);
/// ```
pub fn littles_law_residual(n: usize, x: f64, rt: SimDuration) -> f64 {
    let predicted = x * rt.as_secs_f64();
    if n == 0 {
        return 0.0;
    }
    (predicted - n as f64) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_share_normalizations() {
        let s = CpuShare {
            user: 0.6,
            sys: 0.2,
            idle: 0.2,
        };
        assert!((s.utilization() - 0.8).abs() < 1e-12);
        assert!((s.user_share_of_busy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn idle_cpu_share_no_nan() {
        let s = CpuShare::default();
        assert_eq!(s.user_share_of_busy(), 0.0);
    }

    #[test]
    fn speedup() {
        let a = RunSummary {
            throughput: 120.0,
            ..RunSummary::default()
        };
        let b = RunSummary {
            throughput: 100.0,
            ..RunSummary::default()
        };
        assert!((a.speedup_over(&b) - 1.2).abs() < 1e-12);
        assert_eq!(a.speedup_over(&RunSummary::default()), 0.0);
    }

    #[test]
    fn littles_law_detects_mismatch() {
        // 100 users but X*R says 50: residual -0.5.
        let r = littles_law_residual(100, 500.0, SimDuration::from_millis(100));
        assert!((r + 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_users_residual_zero() {
        assert_eq!(
            littles_law_residual(0, 100.0, SimDuration::from_millis(1)),
            0.0
        );
    }
}
