//! # asyncinv-metrics — measurement utilities for the asyncinv experiments
//!
//! The paper (*"Improving Asynchronous Invocation Performance in
//! Client-server Systems"*, ICDCS 2018) reports throughput curves, average
//! response times, context-switch rates, CPU user/system splits and
//! per-request syscall counts, collected with JMeter, Collectl and JProfiler.
//! This crate is the in-simulation equivalent of that tool chain:
//!
//! * [`Histogram`] — log-linear latency histogram (~2% relative error) with
//!   percentile queries.
//! * [`ThroughputWindow`] — completions over a measurement window, with
//!   1-second buckets for saturation curves.
//! * [`RunSummary`] — one experiment cell: throughput, response times,
//!   context switches, write syscalls, CPU breakdown. Serializable so bench
//!   harnesses can persist results.
//! * [`Table`] — plain-text table rendering used by the `fig*`/`table*`
//!   harness binaries to print paper-style rows.
//! * [`littles_law_residual`] — sanity check N = X·R that the paper leans
//!   on when explaining its Fig 7.
//!
//! ```
//! use asyncinv_metrics::Histogram;
//! use asyncinv_simcore::SimDuration;
//!
//! let mut h = Histogram::new();
//! for ms in 1..=100 {
//!     h.record(SimDuration::from_millis(ms));
//! }
//! assert_eq!(h.count(), 100);
//! let p50 = h.quantile(0.50);
//! assert!((45..=55).contains(&p50.as_millis()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod histogram;
mod knee;
mod summary;
mod table;
mod throughput;

pub use chart::{Chart, Series};
pub use histogram::Histogram;
pub use knee::{find_knee, SweepPoint};
pub use summary::{littles_law_residual, ClassSummary, CpuShare, RunSummary};
pub use table::{fmt_f64, Align, Table};
pub use throughput::ThroughputWindow;
