//! The DAG driver: an open-loop root arrival process over a graph of
//! calibrated tier stations, with per-edge timeouts, retries, budgets
//! and hedges.
//!
//! Each tier is a finite-slot FIFO station replaying its fleet's
//! calibrated service-time lattice (see [`crate::calibrate`]); each edge
//! is an async RPC with one-way latency and a caller-side resilience
//! policy. Failures are *silent* in the paper's async-invocation sense:
//! a shed or failed call never replies — its caller discovers the loss
//! only at its own edge timeout, which is exactly the ingredient that
//! lets unbudgeted retries compound across tiers into metastable
//! collapse.
//!
//! A trivial graph (one tier, no edges) does not run this driver at all:
//! it delegates verbatim to the fleet driver, so its summary and trace
//! are bit-identical to the bare fleet run.

use std::collections::VecDeque;

use asyncinv_fleet::{mix64, Cluster, FleetSummary, HedgeEstimator, ParallelCluster};
use asyncinv_obs::{NoopObserver, Observer, Recorder, TraceEvent, TraceKind};
use asyncinv_simcore::{SimDuration, SimRng, SimTime, Simulation};
use asyncinv_workload::{RetryBudget, RetryPolicy};

use crate::calibrate::{calibrate_tier, FleetDriver, TierProfile, LATTICE};
use crate::graph::{ServiceGraph, EDGE_ROOT};
use crate::span::{DagAttempt, DagSpan, DagSpanStatus};
use crate::summary::{DagSummary, TierCounters};

/// Ring capacity for [`DagRun::run_traced`] on composed graphs (trivial
/// graphs mirror the fleet cell's own trace settings instead).
const DAG_TRACE_CAPACITY: usize = 1 << 20;

/// Everything a DAG run produces.
#[derive(Debug)]
pub struct DagOutcome {
    /// The DAG summary (window counters + whole-run per-tier counters).
    pub summary: DagSummary,
    /// The fleet summary, for trivial graphs only: the single tier's
    /// fleet ran verbatim, and this is bit-identical to what the bare
    /// fleet driver reports.
    pub fleet: Option<FleetSummary>,
    /// One span per root request (composed graphs only).
    pub spans: Vec<DagSpan>,
    /// Per-tier calibration profiles (composed graphs only).
    pub profiles: Vec<TierProfile>,
}

/// A runnable service graph bound to a fleet driver.
#[derive(Debug, Clone)]
pub struct DagRun {
    graph: ServiceGraph,
    driver: FleetDriver,
}

impl DagRun {
    /// Binds a validated graph to a fleet driver.
    ///
    /// # Panics
    ///
    /// Panics when the graph fails [`ServiceGraph::validate`] (matching
    /// `Cluster::new`).
    pub fn new(graph: ServiceGraph, driver: FleetDriver) -> Self {
        if let Err(e) = graph.validate() {
            panic!("invalid ServiceGraph: {e}");
        }
        DagRun { graph, driver }
    }

    /// The bound graph.
    pub fn graph(&self) -> &ServiceGraph {
        &self.graph
    }

    /// Runs without observation.
    pub fn run(&self) -> DagOutcome {
        let mut obs = NoopObserver;
        self.run_observed(&mut obs)
    }

    /// Runs with a recording observer and returns the trace.
    pub fn run_traced(&self) -> (DagOutcome, Recorder) {
        let mut rec = if self.graph.is_trivial() {
            let cell = &self.graph.tier_fleet_config(0).cell;
            Recorder::with_sampling(cell.trace_capacity, cell.trace_sample)
        } else {
            Recorder::new(DAG_TRACE_CAPACITY)
        };
        let outcome = self.run_observed(&mut rec);
        (outcome, rec)
    }

    /// Runs with an arbitrary observer. A trivial graph delegates
    /// straight to the fleet driver (the observer sees the identical
    /// event stream a bare fleet run would produce, and no DAG kinds);
    /// a composed graph calibrates every tier and drives the DAG
    /// simulation.
    pub fn run_observed(&self, obs: &mut dyn Observer) -> DagOutcome {
        if self.graph.is_trivial() {
            return self.run_trivial(obs);
        }
        let profiles: Vec<TierProfile> = (0..self.graph.tiers.len())
            .map(|t| calibrate_tier(&self.graph, t, self.driver))
            .collect();
        let (summary, spans) = Engine::new(&self.graph, &profiles, obs).run();
        DagOutcome {
            summary,
            fleet: None,
            spans,
            profiles,
        }
    }

    fn run_trivial(&self, obs: &mut dyn Observer) -> DagOutcome {
        let cfg = self.graph.tier_fleet_config(0);
        let kind = self.graph.tiers[0].kind;
        let fleet = match self.driver {
            FleetDriver::Interleaved => Cluster::new(cfg).run_observed(kind, obs),
            FleetDriver::Parallel => ParallelCluster::new(cfg).run_observed(kind, obs),
        };
        let f = &fleet.fleet;
        // Projection of the fleet summary into the DAG shape; `arrivals`
        // equals `requests` here because the closed-loop fleet cell has
        // no separate whole-run arrival count.
        let summary = DagSummary {
            name: self.graph.name.clone(),
            requests: f.completions + f.abandoned,
            completed: f.completions,
            failed: f.abandoned,
            arrivals: f.completions + f.abandoned,
            goodput: f.throughput,
            mean_rt_us: f.mean_rt_us,
            p50_rt_us: f.p50_rt_us,
            p99_rt_us: f.p99_rt_us,
            tier_names: vec![self.graph.tiers[0].name.clone()],
            per_tier: vec![TierCounters::default()],
        };
        DagOutcome {
            summary,
            fleet: Some(fleet),
            spans: Vec::new(),
            profiles: Vec::new(),
        }
    }
}

/// DAG simulation events.
#[derive(Debug, Clone, Copy)]
enum DagEvent {
    /// Next root arrival (reschedules itself while before the horizon).
    Arrive,
    /// A call instance reaches its tier's station.
    NodeArrive(u32),
    /// A call instance's local service completes.
    SvcDone(u32),
    /// A call instance's reply reaches its caller.
    Reply(u32),
    /// A per-attempt edge timeout at the caller.
    EdgeTimeout { parent: u32, slot: u32, attempt: u32 },
    /// The hedge delay elapsed with the edge call still outstanding.
    HedgeFire {
        parent: u32,
        slot: u32,
        attempt: u32,
        delay_ns: u64,
    },
    /// The scenario's tier brownout begins.
    SlowStart(u32),
    /// The scenario's tier brownout ends.
    SlowEnd(u32),
}

/// Caller-side state of one out-edge of one call instance.
#[derive(Debug)]
struct EdgeCtl {
    /// Edge index into the graph.
    edge: usize,
    /// Dispatch generations so far (initial + retries; hedges excluded).
    attempts: u32,
    /// A hedge duplicate has been fired for this edge call.
    hedged: bool,
    /// When the first generation was dispatched (edge-RTT baseline).
    first_dispatch: SimTime,
    /// When the edge joined, if it has.
    joined_at: Option<SimTime>,
    /// The winning instance.
    winner: Option<u32>,
}

impl EdgeCtl {
    fn new(edge: usize) -> Self {
        EdgeCtl {
            edge,
            attempts: 0,
            hedged: false,
            first_dispatch: SimTime::ZERO,
            joined_at: None,
            winner: None,
        }
    }
}

/// One call instance.
#[derive(Debug)]
struct Inst {
    req: u64,
    node: usize,
    /// Inbound edge index ([`EDGE_ROOT`] for the root call).
    edge: u64,
    attempt: u32,
    hedge: bool,
    /// `(parent instance, out-edge slot)`; `None` for the root call.
    parent: Option<(u32, u32)>,
    dead: bool,
    won: bool,
    /// Out-edges not yet joined (meaningful after local service).
    pending: u32,
    out: Vec<EdgeCtl>,
    dispatch: SimTime,
    enter: Option<SimTime>,
    exit: Option<SimTime>,
    done: Option<SimTime>,
    reply: Option<SimTime>,
    death: Option<SimTime>,
}

impl Inst {
    fn new(
        req: u64,
        node: usize,
        edge: u64,
        attempt: u32,
        hedge: bool,
        parent: Option<(u32, u32)>,
        dispatch: SimTime,
    ) -> Self {
        Inst {
            req,
            node,
            edge,
            attempt,
            hedge,
            parent,
            dead: false,
            won: false,
            pending: 0,
            out: Vec::new(),
            dispatch,
            enter: None,
            exit: None,
            done: None,
            reply: None,
            death: None,
        }
    }
}

/// A tier's finite-slot FIFO station.
#[derive(Debug)]
struct TierStation {
    slots: usize,
    busy: usize,
    cap: usize,
    queue: VecDeque<u32>,
    slowed: bool,
}

/// How a reply is received at its caller — computed first, so each
/// counter keeps a single increment site.
enum ReplyFate {
    Join,
    HedgeLoser,
    Orphan,
}

struct Engine<'a> {
    g: &'a ServiceGraph,
    profiles: &'a [TierProfile],
    obs: &'a mut dyn Observer,
    enabled: bool,
    sim: Simulation<DagEvent>,
    rng: SimRng,
    stations: Vec<TierStation>,
    insts: Vec<Inst>,
    roots: Vec<u32>,
    counters: Vec<TierCounters>,
    budgets: Vec<RetryBudget>,
    estimators: Vec<HedgeEstimator>,
    out_edges: Vec<Vec<usize>>,
    arrivals: u64,
    requests: u64,
    completed: u64,
    failed: u64,
    rts: Vec<u64>,
    warm_start: SimTime,
    warm_end: SimTime,
    window_opened: bool,
}

impl<'a> Engine<'a> {
    fn new(g: &'a ServiceGraph, profiles: &'a [TierProfile], obs: &'a mut dyn Observer) -> Self {
        let stations = g
            .tiers
            .iter()
            .map(|t| TierStation {
                slots: t.slots(),
                busy: 0,
                cap: t.queue_cap,
                queue: VecDeque::new(),
                slowed: false,
            })
            .collect();
        let budgets = g
            .edges
            .iter()
            .map(|e| {
                RetryBudget::new(&RetryPolicy {
                    budget_ratio: e.budget_ratio,
                    ..RetryPolicy::default()
                })
            })
            .collect();
        let estimators = g.edges.iter().map(|_| HedgeEstimator::new()).collect();
        let enabled = obs.is_enabled();
        Engine {
            out_edges: g.out_edges(),
            counters: vec![TierCounters::default(); g.tiers.len()],
            stations,
            budgets,
            estimators,
            obs,
            enabled,
            sim: Simulation::new(),
            rng: SimRng::new(g.seed),
            insts: Vec::new(),
            roots: Vec::new(),
            arrivals: 0,
            requests: 0,
            completed: 0,
            failed: 0,
            rts: Vec::new(),
            warm_start: SimTime::ZERO + g.arrivals.warmup,
            warm_end: SimTime::ZERO + g.arrivals.warmup + g.arrivals.measure,
            g,
            profiles,
            window_opened: false,
        }
    }

    fn emit(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.obs.record(ev);
        }
    }

    fn run(mut self) -> (DagSummary, Vec<DagSpan>) {
        for (t, tier) in self.g.tiers.iter().enumerate() {
            self.obs.thread_name(t, &tier.name);
        }
        self.obs.run_window(self.warm_start, self.warm_end);
        if let Some(s) = self.g.slow {
            self.sim
                .schedule_at(SimTime::ZERO + s.at, DagEvent::SlowStart(s.tier as u32));
            self.sim.schedule_at(
                SimTime::ZERO + s.at + s.duration,
                DagEvent::SlowEnd(s.tier as u32),
            );
        }
        let mean_gap = 1.0 / self.g.arrivals.rate_per_sec;
        let first = SimDuration::from_secs_f64(self.rng.exp_f64(mean_gap));
        if SimTime::ZERO + first < self.warm_end {
            self.sim.schedule(first, DagEvent::Arrive);
        }
        while let Some((t, ev)) = self.sim.next_event() {
            if !self.window_opened && t >= self.warm_start {
                self.window_opened = true;
                self.obs.window_open(self.warm_start);
            }
            match ev {
                DagEvent::Arrive => self.arrive(),
                DagEvent::NodeArrive(id) => self.node_arrive(id),
                DagEvent::SvcDone(id) => self.svc_done(id),
                DagEvent::Reply(id) => self.reply_at_caller(id),
                DagEvent::EdgeTimeout {
                    parent,
                    slot,
                    attempt,
                } => self.edge_timeout(parent, slot as usize, attempt),
                DagEvent::HedgeFire {
                    parent,
                    slot,
                    attempt,
                    delay_ns,
                } => self.hedge_fire(parent, slot as usize, attempt, delay_ns),
                DagEvent::SlowStart(tier) => self.set_slowed(tier as usize, true),
                DagEvent::SlowEnd(tier) => self.set_slowed(tier as usize, false),
            }
        }
        self.finish()
    }

    fn set_slowed(&mut self, tier: usize, slowed: bool) {
        let now = self.sim.now();
        self.stations[tier].slowed = slowed;
        self.emit(
            TraceEvent::new(now, TraceKind::Mark)
                .thread(tier)
                .arg(u64::from(slowed)),
        );
    }

    fn arrive(&mut self) {
        let now = self.sim.now();
        self.arrivals += 1;
        if now >= self.warm_start {
            self.requests += 1;
        }
        let req = self.arrivals - 1;
        let id = self.insts.len() as u32;
        self.insts
            .push(Inst::new(req, 0, EDGE_ROOT, 0, false, None, now));
        self.roots.push(id);
        self.emit(
            TraceEvent::new(now, TraceKind::RequestArrive)
                .conn(req as usize)
                .thread(0),
        );
        self.node_arrive(id);
        let gap = SimDuration::from_secs_f64(self.rng.exp_f64(1.0 / self.g.arrivals.rate_per_sec));
        if now + gap < self.warm_end {
            self.sim.schedule(gap, DagEvent::Arrive);
        }
    }

    fn node_arrive(&mut self, id: u32) {
        let now = self.sim.now();
        let (node, req, edge, is_root) = {
            let i = &self.insts[id as usize];
            (i.node, i.req, i.edge, i.parent.is_none())
        };
        let st = &mut self.stations[node];
        if st.busy < st.slots {
            st.busy += 1;
            self.start_service(id);
        } else if st.queue.len() < st.cap {
            st.queue.push_back(id);
            self.insts[id as usize].enter = Some(now);
            self.emit(
                TraceEvent::new(now, TraceKind::QueueEnter)
                    .conn(req as usize)
                    .thread(node)
                    .class(id as usize)
                    .arg(edge),
            );
        } else {
            // Queue full: drop silently. The caller learns nothing until
            // its edge timeout fires — async invocation's silent failure.
            self.counters[node].sheds += 1;
            self.insts[id as usize].dead = true;
            self.insts[id as usize].death = Some(now);
            self.emit(
                TraceEvent::new(now, TraceKind::Shed)
                    .conn(req as usize)
                    .thread(node)
                    .class(id as usize)
                    .arg(edge),
            );
            if is_root {
                self.root_abandon(id, 1);
            }
        }
    }

    fn start_service(&mut self, id: u32) {
        let now = self.sim.now();
        let (node, req, edge, fresh) = {
            let i = &self.insts[id as usize];
            (i.node, i.req, i.edge, i.enter.is_none())
        };
        if fresh {
            // A free slot served the arrival immediately: the queue
            // episode is zero-length but still balanced in the trace.
            self.insts[id as usize].enter = Some(now);
            self.emit(
                TraceEvent::new(now, TraceKind::QueueEnter)
                    .conn(req as usize)
                    .thread(node)
                    .class(id as usize)
                    .arg(edge),
            );
        }
        self.insts[id as usize].exit = Some(now);
        self.emit(
            TraceEvent::new(now, TraceKind::QueueExit)
                .conn(req as usize)
                .thread(node)
                .class(id as usize)
                .arg(edge),
        );
        let prof = &self.profiles[node];
        let lattice = if self.stations[node].slowed {
            prof.slow_lattice
                .as_ref()
                .expect("a slowed tier carries its browned-out lattice")
        } else {
            &prof.lattice
        };
        // Stateless per-visit draw: a hash of (seed, instance, tier)
        // indexes the quantile lattice, so service times are independent
        // of event-processing order.
        let h = mix64(
            self.g
                .seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ ((node as u64 + 1) << 48),
        );
        let dur = SimDuration::from_nanos(lattice[(h % LATTICE as u64) as usize]);
        self.sim.schedule(dur, DagEvent::SvcDone(id));
    }

    fn svc_done(&mut self, id: u32) {
        let now = self.sim.now();
        let node = self.insts[id as usize].node;
        self.counters[node].served += 1;
        self.insts[id as usize].done = Some(now);
        let st = &mut self.stations[node];
        st.busy -= 1;
        if let Some(next) = st.queue.pop_front() {
            st.busy += 1;
            self.start_service(next);
        }
        let outs = self.out_edges[node].clone();
        if outs.is_empty() {
            self.send_reply(id);
        } else {
            self.insts[id as usize].pending = outs.len() as u32;
            self.insts[id as usize].out = outs.iter().map(|&e| EdgeCtl::new(e)).collect();
            for (slot, &e) in outs.iter().enumerate() {
                self.budgets[e].deposit();
                self.dispatch_child(id, slot, 0, false);
            }
        }
    }

    /// The single dispatch site: initial sends, edge retries and hedge
    /// duplicates all flow through here.
    fn dispatch_child(&mut self, parent: u32, slot: usize, attempt: u32, hedge: bool) {
        let now = self.sim.now();
        let (req, e_idx) = {
            let p = &self.insts[parent as usize];
            (p.req, p.out[slot].edge)
        };
        let e = &self.g.edges[e_idx];
        let (to, latency, timeout, hcfg) = (e.to, e.latency, e.timeout, e.hedge);
        let id = self.insts.len() as u32;
        self.insts.push(Inst::new(
            req,
            to,
            e_idx as u64,
            attempt,
            hedge,
            Some((parent, slot as u32)),
            now,
        ));
        {
            let ctl = &mut self.insts[parent as usize].out[slot];
            if attempt == 0 && !hedge {
                ctl.first_dispatch = now;
            }
            if !hedge {
                ctl.attempts = attempt + 1;
            }
        }
        self.counters[to].dispatches += 1;
        self.emit(
            TraceEvent::new(now, TraceKind::DagDispatch)
                .conn(req as usize)
                .thread(to)
                .class(id as usize)
                .arg(e_idx as u64),
        );
        self.sim.schedule(latency, DagEvent::NodeArrive(id));
        if !hedge {
            self.sim.schedule(
                timeout,
                DagEvent::EdgeTimeout {
                    parent,
                    slot: slot as u32,
                    attempt,
                },
            );
            if let Some(h) = hcfg {
                if !self.insts[parent as usize].out[slot].hedged {
                    let delay = self.estimators[e_idx].delay(&h);
                    self.sim.schedule(
                        delay,
                        DagEvent::HedgeFire {
                            parent,
                            slot: slot as u32,
                            attempt,
                            delay_ns: delay.as_nanos(),
                        },
                    );
                }
            }
        }
    }

    fn edge_timeout(&mut self, parent: u32, slot: usize, attempt: u32) {
        let (req, pnode, e_idx) = {
            let p = &self.insts[parent as usize];
            if p.dead {
                return;
            }
            let ctl = &p.out[slot];
            // Joined, or a newer generation owns the edge: stale timer.
            if ctl.joined_at.is_some() || ctl.attempts != attempt + 1 {
                return;
            }
            (p.req, p.node, ctl.edge)
        };
        let now = self.sim.now();
        self.counters[pnode].edge_timeouts += 1;
        self.emit(
            TraceEvent::new(now, TraceKind::ClientTimeout)
                .conn(req as usize)
                .thread(pnode)
                .arg(attempt as u64),
        );
        let can_retry = attempt < self.g.edges[e_idx].max_retries;
        if can_retry && self.budgets[e_idx].try_withdraw() {
            self.counters[pnode].edge_retries += 1;
            self.emit(
                TraceEvent::new(now, TraceKind::DagEdgeRetry)
                    .conn(req as usize)
                    .thread(pnode)
                    .arg(attempt as u64),
            );
            self.dispatch_child(parent, slot, attempt + 1, false);
        } else {
            self.fail_call(parent, attempt + 1);
        }
    }

    fn hedge_fire(&mut self, parent: u32, slot: usize, attempt: u32, delay_ns: u64) {
        let (req, pnode) = {
            let p = &self.insts[parent as usize];
            if p.dead {
                return;
            }
            let ctl = &p.out[slot];
            if ctl.joined_at.is_some() || ctl.attempts != attempt + 1 || ctl.hedged {
                return;
            }
            (p.req, p.node)
        };
        let now = self.sim.now();
        self.insts[parent as usize].out[slot].hedged = true;
        self.counters[pnode].hedges += 1;
        self.emit(
            TraceEvent::new(now, TraceKind::Hedge)
                .conn(req as usize)
                .thread(pnode)
                .arg(delay_ns),
        );
        self.dispatch_child(parent, slot, attempt, true);
    }

    /// An edge of `id`'s own call exhausted its retries or budget: the
    /// call dies without replying. Its caller discovers the loss at its
    /// own edge timeout; a dead root is an abandoned request.
    fn fail_call(&mut self, id: u32, attempts: u32) {
        let now = self.sim.now();
        let (node, is_root) = {
            let i = &self.insts[id as usize];
            (i.node, i.parent.is_none())
        };
        self.insts[id as usize].dead = true;
        self.insts[id as usize].death = Some(now);
        self.counters[node].failed_calls += 1;
        if is_root {
            self.root_abandon(id, attempts);
        }
    }

    fn root_abandon(&mut self, id: u32, attempts: u32) {
        let now = self.sim.now();
        let req = self.insts[id as usize].req;
        self.emit(
            TraceEvent::new(now, TraceKind::Abandon)
                .conn(req as usize)
                .thread(0)
                .arg(attempts as u64),
        );
        if now >= self.warm_start {
            self.failed += 1;
        }
    }

    fn send_reply(&mut self, id: u32) {
        let now = self.sim.now();
        let (node, req, edge, parent) = {
            let i = &self.insts[id as usize];
            (i.node, i.req, i.edge, i.parent)
        };
        self.insts[id as usize].reply = Some(now);
        self.counters[node].replies += 1;
        match parent {
            None => {
                let rt = now.duration_since(self.insts[id as usize].dispatch);
                self.emit(
                    TraceEvent::new(now, TraceKind::Completion)
                        .conn(req as usize)
                        .thread(node)
                        .arg(rt.as_nanos()),
                );
                if now >= self.warm_start && now < self.warm_end {
                    self.completed += 1;
                    self.rts.push(rt.as_nanos());
                }
            }
            Some(_) => {
                let latency = self.g.edges[edge as usize].latency;
                self.sim.schedule(latency, DagEvent::Reply(id));
            }
        }
    }

    fn reply_at_caller(&mut self, child: u32) {
        let now = self.sim.now();
        let (pid, slot) = {
            let c = &self.insts[child as usize];
            let (p, s) = c.parent.expect("root replies complete at the client");
            (p, s as usize)
        };
        let (cnode, creq, cattempt, chedge) = {
            let c = &self.insts[child as usize];
            (c.node, c.req, c.attempt, c.hedge)
        };
        let fate = {
            let p = &self.insts[pid as usize];
            if p.dead {
                ReplyFate::Orphan
            } else {
                let ctl = &p.out[slot];
                match ctl.winner {
                    None => ReplyFate::Join,
                    Some(w) => {
                        let w = &self.insts[w as usize];
                        // The loser of a hedged pair is cancelled; any
                        // other late reply (an older or newer retry
                        // generation) is an orphan.
                        if w.attempt == cattempt && w.hedge != chedge {
                            ReplyFate::HedgeLoser
                        } else {
                            ReplyFate::Orphan
                        }
                    }
                }
            }
        };
        match fate {
            ReplyFate::Join => {
                let (pnode, e_idx, first_dispatch) = {
                    let p = &mut self.insts[pid as usize];
                    let ctl = &mut p.out[slot];
                    ctl.joined_at = Some(now);
                    ctl.winner = Some(child);
                    p.pending -= 1;
                    (p.node, p.out[slot].edge, p.out[slot].first_dispatch)
                };
                self.insts[child as usize].won = true;
                self.counters[cnode].joins += 1;
                self.emit(
                    TraceEvent::new(now, TraceKind::DagJoin)
                        .conn(creq as usize)
                        .thread(pnode)
                        .class(child as usize)
                        .arg(e_idx as u64),
                );
                self.estimators[e_idx].observe(now.duration_since(first_dispatch));
                if self.insts[pid as usize].pending == 0 {
                    self.send_reply(pid);
                }
            }
            ReplyFate::HedgeLoser => {
                let e_idx = self.insts[pid as usize].out[slot].edge;
                self.counters[cnode].hedge_cancels += 1;
                self.emit(
                    TraceEvent::new(now, TraceKind::HedgeCancel)
                        .conn(creq as usize)
                        .thread(cnode)
                        .class(child as usize)
                        .arg(e_idx as u64),
                );
            }
            ReplyFate::Orphan => {
                self.counters[cnode].orphans += 1;
            }
        }
    }

    fn finish(self) -> (DagSummary, Vec<DagSpan>) {
        let mut rts = self.rts;
        rts.sort_unstable();
        let pct = |q: f64| -> u64 {
            if rts.is_empty() {
                0
            } else {
                rts[(((rts.len() - 1) as f64) * q).round() as usize]
            }
        };
        let mean = if rts.is_empty() {
            0
        } else {
            rts.iter().sum::<u64>() / rts.len() as u64
        };
        let summary = DagSummary {
            name: self.g.name.clone(),
            requests: self.requests,
            completed: self.completed,
            failed: self.failed,
            arrivals: self.arrivals,
            goodput: self.completed as f64 / self.g.arrivals.measure.as_secs_f64(),
            mean_rt_us: mean / 1_000,
            p50_rt_us: pct(0.50) / 1_000,
            p99_rt_us: pct(0.99) / 1_000,
            tier_names: self.g.tiers.iter().map(|t| t.name.clone()).collect(),
            per_tier: self.counters,
        };
        let spans = build_spans(self.g, &self.insts, &self.roots);
        (summary, spans)
    }
}

/// Builds one span per root request from the driver's perfect linkage,
/// including the critical-path phase decomposition (see [`DagSpan`]).
fn build_spans(g: &ServiceGraph, insts: &[Inst], roots: &[u32]) -> Vec<DagSpan> {
    let ntiers = g.tiers.len();
    let mut spans: Vec<DagSpan> = roots
        .iter()
        .map(|&rid| {
            let r = &insts[rid as usize];
            let (end, status) = match r.reply {
                Some(t) => (t, DagSpanStatus::Completed),
                None => (
                    r.death.expect("a drained run leaves no unfinished root"),
                    DagSpanStatus::Failed,
                ),
            };
            DagSpan {
                req: r.req,
                start: r.dispatch,
                end,
                status,
                attempts: Vec::new(),
                tier_queue_ns: vec![0; ntiers],
                tier_service_ns: vec![0; ntiers],
                network_ns: 0,
                wait_ns: 0,
            }
        })
        .collect();
    for (id, i) in insts.iter().enumerate() {
        spans[i.req as usize].attempts.push(DagAttempt {
            inst: id as u32,
            node: i.node,
            edge: i.edge,
            attempt: i.attempt,
            hedge: i.hedge,
            dispatch: i.dispatch,
            enter: i.enter,
            exit: i.exit,
            done: i.done,
            reply: i.reply,
            won: i.won,
        });
    }
    for (req, span) in spans.iter_mut().enumerate() {
        if span.status != DagSpanStatus::Completed {
            // No critical path through a dead request; the whole span is
            // dead wait, which keeps the conservation identity exact.
            span.wait_ns = span.end.duration_since(span.start).as_nanos();
            continue;
        }
        // Walk the chain of last-joining edges from the root call down.
        let mut cur = roots[req];
        loop {
            let i = &insts[cur as usize];
            let enter = i.enter.expect("critical-path calls are never shed");
            let exit = i.exit.expect("critical-path calls started service");
            let done = i.done.expect("critical-path calls finished service");
            span.tier_queue_ns[i.node] += exit.duration_since(enter).as_nanos();
            span.tier_service_ns[i.node] += done.duration_since(exit).as_nanos();
            if i.out.is_empty() {
                break;
            }
            let ctl = i
                .out
                .iter()
                .max_by_key(|c| c.joined_at.expect("a replied call joined every edge"))
                .expect("non-leaf calls have out-edges");
            let w = ctl.winner.expect("joined edges have a winner");
            span.network_ns += 2 * g.edges[ctl.edge].latency.as_nanos();
            span.wait_ns += insts[w as usize].dispatch.duration_since(done).as_nanos();
            cur = w;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::dag_span_audit;
    use crate::summary::dag_audit;
    use asyncinv_servers::ServerKind;

    fn small_graph() -> ServiceGraph {
        let mut g = ServiceGraph::tree("tree", ServerKind::NettyLike, 2, 2, 17);
        g.arrivals.rate_per_sec = 2000.0;
        g.arrivals.warmup = SimDuration::from_millis(50);
        g.arrivals.measure = SimDuration::from_millis(300);
        g
    }

    #[test]
    fn composed_run_is_deterministic() {
        let run = DagRun::new(small_graph(), FleetDriver::Interleaved);
        let a = run.run();
        let b = run.run();
        assert_eq!(a.summary, b.summary);
        assert!(a.summary.completed > 0, "graph must complete requests");
    }

    #[test]
    fn composed_run_is_driver_invariant() {
        let a = DagRun::new(small_graph(), FleetDriver::Interleaved).run();
        let b = DagRun::new(small_graph(), FleetDriver::Parallel).run();
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn composed_run_passes_both_audits() {
        let (outcome, rec) = DagRun::new(small_graph(), FleetDriver::Interleaved).run_traced();
        let report = dag_audit(&outcome.summary, &rec);
        assert!(report.pass(), "{report}");
        let spans = dag_span_audit(&outcome.spans, &rec);
        assert!(spans.pass(), "{spans}");
    }

    #[test]
    fn spans_conserve_bitwise() {
        let outcome = DagRun::new(small_graph(), FleetDriver::Interleaved).run();
        assert!(!outcome.spans.is_empty());
        for s in &outcome.spans {
            assert!(s.conserves(), "span {} does not telescope", s.req);
        }
    }

    #[test]
    fn trivial_graph_delegates_to_the_fleet() {
        let g = ServiceGraph::tree("triv", ServerKind::Proactor, 0, 1, 5);
        let run = DagRun::new(g.clone(), FleetDriver::Interleaved);
        let outcome = run.run();
        let fleet = outcome.fleet.expect("trivial runs report the fleet summary");
        let bare = Cluster::new(g.tier_fleet_config(0)).run(g.tiers[0].kind);
        assert_eq!(fleet, bare, "trivial DAG must be bit-identical to the bare fleet");
        assert!(outcome.spans.is_empty());
        assert_eq!(outcome.summary.completed, bare.fleet.completions);
    }

    #[test]
    fn slow_tier_raises_latency() {
        let mut base = small_graph();
        base.arrivals.rate_per_sec = 500.0;
        let healthy = DagRun::new(base.clone(), FleetDriver::Interleaved).run();
        let mut slowed = base;
        slowed.slow = Some(crate::graph::SlowTier {
            tier: 1,
            factor: 20.0,
            at: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(300),
        });
        let hit = DagRun::new(slowed, FleetDriver::Interleaved).run();
        assert!(
            hit.summary.p99_rt_us > healthy.summary.p99_rt_us,
            "a 20x brownout must raise tail latency ({} vs {})",
            hit.summary.p99_rt_us,
            healthy.summary.p99_rt_us
        );
    }
}
