//! Per-request DAG spans: every call attempt a root request caused,
//! nested under one span, with a per-tier critical-path decomposition
//! that telescopes bitwise to the end-to-end response time.
//!
//! Spans are built by the driver from its own call-instance linkage, not
//! reconstructed from the trace — matching attempts to queue episodes
//! across retry generations from events alone is ambiguous (two
//! generations of the same edge call are indistinguishable once their
//! replies race). [`dag_span_audit`] then closes the loop the other way:
//! the driver-built spans must agree with the recorded trace event by
//! event.

use asyncinv_obs::{AuditCheck, AuditReport, Recorder, TraceKind, NONE};
use asyncinv_simcore::SimTime;
use std::collections::BTreeMap;

/// How a root request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagSpanStatus {
    /// The root tier sent a reply; the span decomposes into phases.
    Completed,
    /// The request died (shed at a tier, or retries/budget exhausted on
    /// some edge of the root call's subtree).
    Failed,
}

/// One call instance (an initial send, an edge retry's re-send, or a
/// hedge duplicate) within a request's span.
#[derive(Debug, Clone, Copy)]
pub struct DagAttempt {
    /// Call-instance id (matches the `class` field of this instance's
    /// trace events).
    pub inst: u32,
    /// Tier the call ran on.
    pub node: usize,
    /// Edge index the call traveled (`EDGE_ROOT` for the root call).
    pub edge: u64,
    /// Retry generation (0 = first send; a hedge duplicate shares its
    /// generation's number).
    pub attempt: u32,
    /// `true` for hedge duplicates.
    pub hedge: bool,
    /// When the caller dispatched this instance.
    pub dispatch: SimTime,
    /// Arrival at the tier's station (`None` when shed).
    pub enter: Option<SimTime>,
    /// Service start (`None` when shed).
    pub exit: Option<SimTime>,
    /// Local service completion (`None` when shed).
    pub done: Option<SimTime>,
    /// Reply sent (`None` when shed or failed before replying).
    pub reply: Option<SimTime>,
    /// `true` when this instance's reply won its edge join (for the
    /// root call: the request completed through it).
    pub won: bool,
}

/// One root request: its end-to-end span, every attempt it caused, and
/// the critical-path phase decomposition.
///
/// For a completed request the phases conserve *bitwise*:
///
/// ```text
/// Σ tier_queue_ns + Σ tier_service_ns + network_ns + wait_ns
///     == (end − start) in nanoseconds
/// ```
///
/// where the per-tier vectors sum queue/service time along the critical
/// path (the chain of last-joining edges), `network_ns` is that chain's
/// wire time and `wait_ns` is everything the caller spent not waiting on
/// the critical child's own chain — timeout dead time before a winning
/// retry, and hedge delay before a winning duplicate.
#[derive(Debug, Clone)]
pub struct DagSpan {
    /// Root request index (matches the `conn` of its trace events).
    pub req: u64,
    /// Arrival time at the root tier.
    pub start: SimTime,
    /// Completion (reply at the client) or death time.
    pub end: SimTime,
    /// How the request ended.
    pub status: DagSpanStatus,
    /// Every call instance of the request, in creation order; index 0 is
    /// the root call.
    pub attempts: Vec<DagAttempt>,
    /// Critical-path queueing per tier, nanoseconds.
    pub tier_queue_ns: Vec<u64>,
    /// Critical-path service per tier, nanoseconds.
    pub tier_service_ns: Vec<u64>,
    /// Critical-path wire time, nanoseconds.
    pub network_ns: u64,
    /// Critical-path dead time (retry/hedge waits), nanoseconds.
    pub wait_ns: u64,
}

impl DagSpan {
    /// Sum of all decomposed phases, nanoseconds.
    pub fn phases_ns(&self) -> u64 {
        self.tier_queue_ns.iter().sum::<u64>()
            + self.tier_service_ns.iter().sum::<u64>()
            + self.network_ns
            + self.wait_ns
    }

    /// `true` when the phase decomposition telescopes exactly to the
    /// span length (always true for spans the driver builds; the audit
    /// asserts it).
    pub fn conserves(&self) -> bool {
        self.phases_ns() == self.end.duration_since(self.start).as_nanos()
    }
}

/// Cross-checks driver-built spans against the recorded trace:
///
/// - every span's phase decomposition conserves bitwise;
/// - completed-span count equals the whole-run `Completion` total;
/// - every retained `Completion` event matches its span's length;
/// - every retained `QueueExit` event matches its attempt's service
///   start (the `class` field carries the call-instance id).
///
/// Applies to composed (non-trivial) DAG runs; a trivial run delegates
/// to the fleet driver, produces no spans, and is audited by
/// `fleet_audit` instead.
pub fn dag_span_audit(spans: &[DagSpan], rec: &Recorder) -> AuditReport {
    let mut by_req: BTreeMap<u64, &DagSpan> = BTreeMap::new();
    let mut exit_by_inst: BTreeMap<u32, SimTime> = BTreeMap::new();
    let mut completed = 0u64;
    let mut broken = 0u64;
    for s in spans {
        by_req.insert(s.req, s);
        if s.status == DagSpanStatus::Completed {
            completed += 1;
        }
        if !s.conserves() {
            broken += 1;
        }
        for a in &s.attempts {
            if let Some(exit) = a.exit {
                exit_by_inst.insert(a.inst, exit);
            }
        }
    }
    let mut rt_mismatch = 0u64;
    let mut exit_mismatch = 0u64;
    for ev in rec.events() {
        match ev.kind {
            TraceKind::Completion => {
                let ok = by_req.get(&(ev.conn as u64)).is_some_and(|s| {
                    s.status == DagSpanStatus::Completed
                        && s.end.duration_since(s.start).as_nanos() == ev.arg
                });
                if !ok {
                    rt_mismatch += 1;
                }
            }
            TraceKind::QueueExit
                if ev.class != NONE && exit_by_inst.get(&ev.class) != Some(&ev.time) =>
            {
                exit_mismatch += 1;
            }
            _ => {}
        }
    }
    let check = |name: &'static str, from_trace: u64, from_summary: u64| AuditCheck {
        name,
        from_trace: from_trace as f64,
        from_summary: from_summary as f64,
    };
    AuditReport {
        server: "dag-spans".into(),
        checks: vec![
            check("span_conservation", broken, 0),
            check("span_completions", rec.total(TraceKind::Completion), completed),
            check("completion_rt_match", rt_mismatch, 0),
            check("queue_exit_match", exit_mismatch, 0),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, len_ns: u64) -> DagSpan {
        DagSpan {
            req,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(len_ns),
            status: DagSpanStatus::Completed,
            attempts: Vec::new(),
            tier_queue_ns: vec![len_ns / 2],
            tier_service_ns: vec![len_ns - len_ns / 2],
            network_ns: 0,
            wait_ns: 0,
        }
    }

    #[test]
    fn conservation_is_bitwise() {
        let mut s = span(0, 1000);
        assert!(s.conserves());
        s.wait_ns = 1;
        assert!(!s.conserves());
    }

    #[test]
    fn audit_flags_broken_spans() {
        let rec = Recorder::new(16);
        let good = [span(0, 1000)];
        // One completed span but zero Completion trace events.
        let report = dag_span_audit(&good, &rec);
        let names: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["span_completions"]);

        let mut bad = span(1, 500);
        bad.network_ns = 7;
        let report = dag_span_audit(&[bad], &rec);
        assert!(report
            .failures()
            .iter()
            .any(|c| c.name == "span_conservation"));
    }
}
