//! Tier calibration: measure each fleet before composing it.
//!
//! The fleet drive loops are sealed deterministic machines — N of them
//! cannot be interleaved event-by-event inside one kernel without
//! rebuilding them. So the DAG layer runs each tier's fleet *for real*
//! (through the exact [`Cluster`]/[`ParallelCluster`] entry points the
//! single-fleet studies use) under light closed-loop load, and folds the
//! measured response-time distribution into a fixed-size quantile
//! lattice the DAG station replays per visit. Per-request architecture
//! costs (write-spins, context switches, `socket.write()` calls) ride
//! along, so the composed study can attribute spin work tier by tier.

use asyncinv_fault::{FaultEvent, FaultKind, FaultPlan};
use asyncinv_fleet::{Cluster, FleetSummary, ParallelCluster, ShardFault};
use asyncinv_obs::{Observer, TraceEvent, TraceKind};
use asyncinv_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::graph::ServiceGraph;

/// Quantile-lattice resolution: each tier's calibrated service-time
/// distribution is stored as this many evenly spaced quantiles, and the
/// DAG station draws uniformly among them per visit.
pub const LATTICE: usize = 64;

/// Which fleet drive loop calibrates (and, for trivial graphs, serves)
/// each tier. The two drivers are bit-identical by construction, so a
/// [`crate::DagSummary`] must not depend on this choice — the property
/// suite asserts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetDriver {
    /// The sequential reference driver ([`Cluster`]).
    Interleaved,
    /// The lock-free parallel driver ([`ParallelCluster`]).
    Parallel,
}

/// One tier's calibrated behavior: its measured service-time quantile
/// lattice (healthy and, when the scenario browns this tier out, slowed)
/// plus per-request architecture costs from the fleet's own summary.
#[derive(Debug, Clone)]
pub struct TierProfile {
    /// Tier index in the graph.
    pub tier: usize,
    /// Fleet summary of the calibration run (per-shard counters intact).
    pub summary: FleetSummary,
    /// `LATTICE` evenly spaced response-time quantiles, nanoseconds.
    pub lattice: Vec<u64>,
    /// The lattice of the browned-out rerun (every shard slowed by the
    /// scenario's factor); `None` when the scenario does not slow this
    /// tier.
    pub slow_lattice: Option<Vec<u64>>,
    /// Zero-return `socket.write()` spins per completed request.
    pub spins_per_req: f64,
    /// Context switches per completed request.
    pub cs_per_req: f64,
    /// `socket.write()` calls per completed request.
    pub writes_per_req: f64,
}

impl TierProfile {
    /// Mean of the healthy lattice, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.lattice.iter().sum::<u64>() / self.lattice.len() as u64
    }
}

/// Collects `Completion` response times inside the measurement window —
/// exact, unlike fishing them out of a capacity-bounded trace ring.
#[derive(Debug, Default)]
struct CalObserver {
    window: Option<(SimTime, SimTime)>,
    rts: Vec<u64>,
}

impl Observer for CalObserver {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        if ev.kind == TraceKind::Completion {
            let (start, end) = self.window.expect("window announced before events");
            if ev.time >= start && ev.time < end {
                self.rts.push(ev.arg);
            }
        }
    }

    fn run_window(&mut self, start: SimTime, end: SimTime) {
        self.window = Some((start, end));
    }
}

/// Folds sorted response-time samples into `LATTICE` evenly spaced
/// quantiles (midpoint rule, deterministic).
fn fold_lattice(mut rts: Vec<u64>) -> Vec<u64> {
    assert!(
        !rts.is_empty(),
        "calibration produced no completions; widen CalSpec.measure"
    );
    rts.sort_unstable();
    let n = rts.len();
    (0..LATTICE)
        .map(|i| {
            let idx = ((i as f64 + 0.5) / LATTICE as f64 * n as f64) as usize;
            rts[idx.min(n - 1)]
        })
        .collect()
}

fn run_calibration(
    graph: &ServiceGraph,
    tier: usize,
    driver: FleetDriver,
    slow_factor: Option<f64>,
) -> (FleetSummary, Vec<u64>) {
    let mut cfg = graph.tier_fleet_config(tier);
    if let Some(factor) = slow_factor {
        // Brown out every shard for the whole calibration run: the
        // browned-out tier's lattice is its steady slowed distribution.
        cfg.shard_faults = (0..cfg.shards)
            .map(|shard| ShardFault {
                shard,
                plan: FaultPlan {
                    seed: graph.seed,
                    events: vec![FaultEvent {
                        at: SimDuration::ZERO,
                        fault: FaultKind::Slowdown {
                            factor,
                            duration: None,
                        },
                    }],
                },
            })
            .collect();
    }
    let kind = graph.tiers[tier].kind;
    let mut obs = CalObserver::default();
    let summary = match driver {
        FleetDriver::Interleaved => Cluster::new(cfg).run_observed(kind, &mut obs),
        FleetDriver::Parallel => ParallelCluster::new(cfg).run_observed(kind, &mut obs),
    };
    (summary, fold_lattice(obs.rts))
}

/// Calibrates one tier: runs its fleet (and, when the scenario browns
/// this tier out, a slowed rerun on the identical workload) and returns
/// its [`TierProfile`].
pub fn calibrate_tier(graph: &ServiceGraph, tier: usize, driver: FleetDriver) -> TierProfile {
    let (summary, lattice) = run_calibration(graph, tier, driver, None);
    let slow_lattice = graph
        .slow
        .filter(|s| s.tier == tier)
        .map(|s| run_calibration(graph, tier, driver, Some(s.factor)).1);
    TierProfile {
        tier,
        spins_per_req: summary.fleet.spins_per_req,
        cs_per_req: summary.fleet.cs_per_req,
        writes_per_req: summary.fleet.writes_per_req,
        summary,
        lattice,
        slow_lattice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncinv_servers::ServerKind;

    #[test]
    fn lattice_fold_is_monotone_and_sized() {
        let lat = fold_lattice((1..=1000).rev().collect());
        assert_eq!(lat.len(), LATTICE);
        assert!(lat.windows(2).all(|w| w[0] <= w[1]));
        assert!(lat[0] >= 1 && lat[LATTICE - 1] <= 1000);
    }

    #[test]
    fn calibration_is_deterministic_and_driver_invariant() {
        let g = ServiceGraph::chain("cal", ServerKind::NettyLike, 1, 11);
        let a = calibrate_tier(&g, 0, FleetDriver::Interleaved);
        let b = calibrate_tier(&g, 0, FleetDriver::Interleaved);
        let c = calibrate_tier(&g, 0, FleetDriver::Parallel);
        assert_eq!(a.lattice, b.lattice);
        assert_eq!(a.lattice, c.lattice, "drivers must calibrate identically");
        assert!(a.mean_ns() > 0);
        assert!(a.slow_lattice.is_none());
    }

    #[test]
    fn slow_lattice_is_slower() {
        let mut g = ServiceGraph::chain("cal", ServerKind::NettyLike, 1, 11);
        g.slow = Some(crate::graph::SlowTier {
            tier: 1,
            factor: 8.0,
            at: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(100),
        });
        let p = calibrate_tier(&g, 1, FleetDriver::Interleaved);
        let slow = p.slow_lattice.as_ref().expect("tier 1 is browned out");
        let slow_mean = slow.iter().sum::<u64>() / LATTICE as u64;
        assert!(
            slow_mean > 2 * p.mean_ns(),
            "an 8x CPU brownout must visibly slow the lattice ({slow_mean} vs {})",
            p.mean_ns()
        );
        // Tier 0 is not slowed.
        assert!(calibrate_tier(&g, 0, FleetDriver::Interleaved)
            .slow_lattice
            .is_none());
    }
}
