//! The serializable service-graph scenario schema.
//!
//! A [`ServiceGraph`] is the checked-in description of a multi-tier
//! deployment: tiers (fleets of one architecture), edges (async RPCs
//! with latency/timeout/retry/hedge policy), a root open-loop arrival
//! process, and an optional single-tier brownout window. Topology
//! constructors cover the canonical shapes (chain, fan-out, diamond,
//! and a DeathStarBench-like social-network graph).

use asyncinv_fleet::{BalancerKind, FleetConfig, HedgeConfig};
use asyncinv_servers::{ExperimentConfig, ServerKind};
use asyncinv_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Sentinel edge index for the root call (the client's call into tier
/// 0), used as the queue-item code on root-call trace events.
pub const EDGE_ROOT: u64 = u32::MAX as u64;

/// One tier: a homogeneous fleet of `shards` machines running `kind`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Tier name (report label, trace track name).
    pub name: String,
    /// Server architecture every shard of this tier runs.
    pub kind: ServerKind,
    /// Number of shards in the tier's fleet.
    pub shards: usize,
    /// Balancer in front of the tier's fleet (calibration runs route
    /// through it; at one shard it draws no randomness).
    pub balancer: BalancerKind,
    /// Response size of this tier's RPC, bytes.
    pub response_bytes: usize,
    /// Concurrent calls one shard serves at calibrated speed; the
    /// tier's station capacity is `shards * slots_per_shard`.
    pub slots_per_shard: usize,
    /// Pending-call queue capacity of the tier's station; arrivals
    /// beyond it are shed (dropped silently — callers discover the loss
    /// at their edge timeout, like a full accept queue).
    pub queue_cap: usize,
}

impl TierSpec {
    /// A tier with the defaults the studies use: 2 shards, round-robin,
    /// 4 KB responses, 8 slots per shard, a 4×-capacity queue.
    pub fn new(name: &str, kind: ServerKind) -> Self {
        TierSpec {
            name: name.to_string(),
            kind,
            shards: 2,
            balancer: BalancerKind::RoundRobin,
            response_bytes: 4 * 1024,
            slots_per_shard: 8,
            queue_cap: 64,
        }
    }

    /// Station capacity: concurrent calls served at calibrated speed.
    pub fn slots(&self) -> usize {
        self.shards * self.slots_per_shard
    }
}

/// One edge: an async RPC from tier `from` to tier `to`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Calling tier index.
    pub from: usize,
    /// Called tier index (must be greater than `from`: tiers are stored
    /// in topological order).
    pub to: usize,
    /// One-way network latency of the edge.
    pub latency: SimDuration,
    /// Per-attempt timeout measured from each (re)dispatch.
    pub timeout: SimDuration,
    /// Maximum edge retries before the caller's own call fails.
    pub max_retries: u32,
    /// Finagle-style retry-budget earn rate (tokens per first-attempt
    /// dispatch; each retry spends one). `0.0` disables the budget —
    /// the classic retry-storm ingredient.
    pub budget_ratio: f64,
    /// Optional hedge policy: after an online percentile of observed
    /// edge response times, duplicate the outstanding call and let the
    /// first reply win.
    #[serde(default)]
    pub hedge: Option<HedgeConfig>,
}

impl EdgeSpec {
    /// An edge with the defaults the studies use: 200 µs one-way,
    /// 10 ms timeout, up to 2 retries, no budget, no hedge.
    pub fn new(from: usize, to: usize) -> Self {
        EdgeSpec {
            from,
            to,
            latency: SimDuration::from_micros(200),
            timeout: SimDuration::from_millis(10),
            max_retries: 2,
            budget_ratio: 0.0,
            hedge: None,
        }
    }
}

/// The root open-loop arrival process (Poisson, exponential
/// interarrivals) and its measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Mean request arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window; arrivals stop at its end and the graph
    /// drains (completions after the window are not counted).
    pub measure: SimDuration,
}

/// Calibration knobs: how each tier's fleet is actually run to measure
/// its service-time distribution and per-request costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalSpec {
    /// Closed-loop users per shard during calibration. Kept light (the
    /// default is 1) so the measured distribution is service demand,
    /// not calibration-side queueing — queueing belongs to the DAG
    /// composition.
    pub users_per_shard: usize,
    /// Calibration warm-up.
    pub warmup: SimDuration,
    /// Calibration measurement window.
    pub measure: SimDuration,
}

impl Default for CalSpec {
    fn default() -> Self {
        CalSpec {
            users_per_shard: 1,
            warmup: SimDuration::from_millis(100),
            measure: SimDuration::from_millis(400),
        }
    }
}

/// A CPU brownout on one tier: every shard of the tier runs `factor`×
/// slower over the window, modeled by swapping the tier's station onto
/// its browned-out calibrated distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowTier {
    /// Tier whose fleet browns out.
    pub tier: usize,
    /// Service-time multiplier while browned out (> 1 slows down).
    pub factor: f64,
    /// Onset, measured from run start.
    pub at: SimDuration,
    /// Brownout length.
    pub duration: SimDuration,
}

/// A serializable multi-tier service graph (see
/// `scenarios/dag_social.json`): tiers in topological order, edges
/// rooted at tier 0, the root arrival process, calibration knobs and an
/// optional single-tier brownout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceGraph {
    /// Scenario name (report label).
    pub name: String,
    /// Tiers in topological order; tier 0 is the root the client calls.
    pub tiers: Vec<TierSpec>,
    /// Edges; every `from` must be less than its `to`.
    pub edges: Vec<EdgeSpec>,
    /// Root arrival process and measurement window.
    pub arrivals: ArrivalSpec,
    /// Calibration knobs.
    #[serde(default)]
    pub cal: CalSpec,
    /// Workload seed (drives arrivals, service sampling and the tier
    /// calibration runs).
    pub seed: u64,
    /// Optional tier brownout.
    #[serde(default)]
    pub slow: Option<SlowTier>,
}

impl ServiceGraph {
    /// A graph with no tiers or edges; push tiers/edges and set
    /// arrivals before use.
    pub fn empty(name: &str, seed: u64) -> Self {
        ServiceGraph {
            name: name.to_string(),
            tiers: Vec::new(),
            edges: Vec::new(),
            arrivals: ArrivalSpec {
                rate_per_sec: 1000.0,
                warmup: SimDuration::from_millis(100),
                measure: SimDuration::from_secs(1),
            },
            cal: CalSpec::default(),
            seed,
            slow: None,
        }
    }

    /// A chain of `depth + 1` tiers (`root -> t1 -> ... -> t_depth`),
    /// homogeneous in `kind`.
    pub fn chain(name: &str, kind: ServerKind, depth: usize, seed: u64) -> Self {
        let mut g = ServiceGraph::empty(name, seed);
        for d in 0..=depth {
            g.tiers.push(TierSpec::new(&format!("t{d}"), kind));
        }
        for d in 0..depth {
            g.edges.push(EdgeSpec::new(d, d + 1));
        }
        g
    }

    /// A full `fanout`-ary tree of the given depth (every non-leaf tier
    /// calls `fanout` children), homogeneous in `kind`. Depth 0 is the
    /// trivial single-tier graph.
    pub fn tree(name: &str, kind: ServerKind, depth: usize, fanout: usize, seed: u64) -> Self {
        assert!(fanout >= 1, "fan-out must be at least 1");
        let mut g = ServiceGraph::empty(name, seed);
        g.tiers.push(TierSpec::new("t0", kind));
        let mut frontier = vec![0usize];
        for d in 1..=depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for k in 0..fanout {
                    let idx = g.tiers.len();
                    g.tiers.push(TierSpec::new(&format!("t{d}_{idx}_{k}"), kind));
                    g.edges.push(EdgeSpec::new(parent, idx));
                    next.push(idx);
                }
            }
            frontier = next;
        }
        g
    }

    /// The diamond: root fans out to two mid tiers that both call one
    /// shared leaf (the leaf is visited twice per request).
    pub fn diamond(name: &str, kind: ServerKind, seed: u64) -> Self {
        let mut g = ServiceGraph::empty(name, seed);
        for n in ["frontend", "left", "right", "storage"] {
            g.tiers.push(TierSpec::new(n, kind));
        }
        g.edges.push(EdgeSpec::new(0, 1));
        g.edges.push(EdgeSpec::new(0, 2));
        g.edges.push(EdgeSpec::new(1, 3));
        g.edges.push(EdgeSpec::new(2, 3));
        g
    }

    /// A DeathStarBench-like social-network shape: an nginx-style
    /// frontend fans out to compose-post, home-timeline and
    /// user-timeline; the timelines share post-storage and
    /// social-graph; compose-post also writes post-storage.
    pub fn social_network(name: &str, kind: ServerKind, seed: u64) -> Self {
        let mut g = ServiceGraph::empty(name, seed);
        for n in [
            "frontend",      // 0
            "compose-post",  // 1
            "home-timeline", // 2
            "user-timeline", // 3
            "post-storage",  // 4
            "social-graph",  // 5
        ] {
            g.tiers.push(TierSpec::new(n, kind));
        }
        for (f, t) in [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (2, 5), (3, 4), (3, 5)] {
            g.edges.push(EdgeSpec::new(f, t));
        }
        g
    }

    /// `true` when the graph is a single tier with no edges — the case
    /// that delegates verbatim to the fleet driver.
    pub fn is_trivial(&self) -> bool {
        self.tiers.len() == 1 && self.edges.is_empty()
    }

    /// Out-edges of each tier, in edge order.
    pub fn out_edges(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.tiers.len()];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.from].push(i);
        }
        out
    }

    /// The fleet configuration a tier's calibration run uses (also the
    /// exact configuration the trivial graph delegates to).
    pub fn tier_fleet_config(&self, tier: usize) -> FleetConfig {
        let t = &self.tiers[tier];
        let mut cell =
            ExperimentConfig::micro(self.cal.users_per_shard * t.shards, t.response_bytes);
        cell.warmup = self.cal.warmup;
        cell.measure = self.cal.measure;
        cell.clients.seed = self.seed ^ (tier as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FleetConfig::new(cell, t.shards, t.balancer)
    }

    /// Checks the graph for structural validity.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("a service graph needs at least one tier".into());
        }
        for (i, t) in self.tiers.iter().enumerate() {
            if t.shards == 0 || t.slots_per_shard == 0 {
                return Err(format!("tier {i} ({}) has zero capacity", t.name));
            }
            if t.queue_cap == 0 {
                return Err(format!("tier {i} ({}) has a zero queue", t.name));
            }
        }
        let mut called = vec![false; self.tiers.len()];
        called[0] = true;
        for (i, e) in self.edges.iter().enumerate() {
            if e.to >= self.tiers.len() || e.from >= self.tiers.len() {
                return Err(format!("edge {i} references a missing tier"));
            }
            if e.from >= e.to {
                return Err(format!(
                    "edge {i} ({} -> {}) breaks topological order (from < to)",
                    e.from, e.to
                ));
            }
            if e.timeout.is_zero() || e.latency.is_zero() {
                return Err(format!("edge {i} needs positive latency and timeout"));
            }
            if !e.budget_ratio.is_finite() || e.budget_ratio < 0.0 {
                return Err(format!("edge {i} has an invalid retry budget"));
            }
            if let Some(h) = &e.hedge {
                h.validate()?;
            }
            called[e.to] = true;
        }
        if let Some(unreached) = called.iter().position(|c| !c) {
            return Err(format!(
                "tier {unreached} ({}) is unreachable from the root",
                self.tiers[unreached].name
            ));
        }
        if !(self.arrivals.rate_per_sec.is_finite() && self.arrivals.rate_per_sec > 0.0) {
            return Err("arrival rate must be positive".into());
        }
        if self.arrivals.measure.is_zero() || self.cal.measure.is_zero() {
            return Err("measurement windows must be positive".into());
        }
        if self.cal.users_per_shard == 0 {
            return Err("calibration needs at least one user per shard".into());
        }
        if let Some(s) = &self.slow {
            if s.tier >= self.tiers.len() {
                return Err(format!("slow tier {} of {}", s.tier, self.tiers.len()));
            }
            if s.factor <= 1.0 || !s.factor.is_finite() {
                return Err("slow factor must be > 1".into());
            }
            if s.duration.is_zero() {
                return Err("slow duration must be positive".into());
            }
        }
        // Cross-validate a derived calibration config end to end.
        self.tier_fleet_config(0).validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_constructors_validate() {
        for g in [
            ServiceGraph::chain("c", ServerKind::NettyLike, 3, 7),
            ServiceGraph::tree("t", ServerKind::SingleThread, 2, 2, 7),
            ServiceGraph::diamond("d", ServerKind::Proactor, 7),
            ServiceGraph::social_network("s", ServerKind::NettyLike, 7),
        ] {
            g.validate().expect("constructor graphs validate");
        }
    }

    #[test]
    fn tree_depth_zero_is_trivial() {
        let g = ServiceGraph::tree("t", ServerKind::NettyLike, 0, 2, 1);
        assert!(g.is_trivial());
        g.validate().expect("trivial graph validates");
    }

    #[test]
    fn social_network_counts() {
        let g = ServiceGraph::social_network("s", ServerKind::NettyLike, 1);
        assert_eq!(g.tiers.len(), 6);
        assert_eq!(g.edges.len(), 8);
        // post-storage is the shared leaf: three callers.
        assert_eq!(g.edges.iter().filter(|e| e.to == 4).count(), 3);
    }

    #[test]
    fn validate_rejects_backward_edges() {
        let mut g = ServiceGraph::chain("c", ServerKind::NettyLike, 2, 7);
        g.edges[0].from = 2;
        g.edges[0].to = 1;
        assert!(g.validate().is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let g = ServiceGraph::social_network("s", ServerKind::SingleThread, 42);
        let json = serde_json::to_string_pretty(&g).expect("serialize");
        let back: ServiceGraph = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, g);
    }
}
