//! DAG run summaries, per-tier counters and the bitwise trace audit.

use asyncinv_obs::{AuditCheck, AuditReport, Recorder, TraceKind};
use serde::{Deserialize, Serialize};

/// Whole-run counters for one tier. Every field has exactly one
/// increment site in the DAG driver (`detlint` enforces this), and
/// [`dag_audit`] reconciles each against the structured trace and the
/// DAG conservation identities — after a full drain every call
/// dispatched into a tier is accounted for exactly once:
///
/// ```text
/// dispatches == sheds + failed_calls + replies        (per non-root tier)
/// replies    == joins + hedge_cancels + orphans       (per non-root tier)
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCounters {
    /// Call instances dispatched into this tier across an edge (initial
    /// sends, edge retries and hedge duplicates; zero for the root tier,
    /// whose calls arrive from the client).
    pub dispatches: u64,
    /// Call instances dropped at this tier's full pending queue.
    pub sheds: u64,
    /// Call instances whose local service completed at this tier.
    pub served: u64,
    /// Call instances that sent a reply from this tier (local service
    /// done and every awaited out-edge joined).
    pub replies: u64,
    /// Call instances that died at this tier because one of their own
    /// out-edges exhausted its retries or retry budget.
    pub failed_calls: u64,
    /// Replies from this tier that won their edge join at the caller.
    pub joins: u64,
    /// Replies from this tier discarded because a hedge sibling won.
    pub hedge_cancels: u64,
    /// Replies from this tier that arrived after their edge had already
    /// joined (a different retry generation won) or their caller died.
    pub orphans: u64,
    /// Per-attempt timeouts this tier's *out*-edges fired (caller side).
    pub edge_timeouts: u64,
    /// Edge retries this tier's out-edges re-dispatched (caller side).
    pub edge_retries: u64,
    /// Hedge duplicates this tier's out-edges fired (caller side).
    pub hedges: u64,
}

/// Summary of one DAG run. Window counters (`requests`, `completed`,
/// `failed`, the latency digest) cover the measurement window like
/// `RunSummary`; `arrivals` and `per_tier` are whole-run totals because
/// the conservation identities only close after a full drain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSummary {
    /// Scenario name.
    pub name: String,
    /// Root arrivals inside the measurement window.
    pub requests: u64,
    /// End-to-end completions inside the window.
    pub completed: u64,
    /// Requests that died (shed at the root tier or a root-level call
    /// failure) inside the window.
    pub failed: u64,
    /// Whole-run root arrivals (the conservation baseline).
    pub arrivals: u64,
    /// Goodput: completions per second over the window.
    pub goodput: f64,
    /// Mean end-to-end response time, microseconds.
    pub mean_rt_us: u64,
    /// Median end-to-end response time, microseconds.
    pub p50_rt_us: u64,
    /// 99th-percentile end-to-end response time, microseconds.
    pub p99_rt_us: u64,
    /// Tier names, index-aligned with `per_tier`.
    pub tier_names: Vec<String>,
    /// Whole-run per-tier counters.
    pub per_tier: Vec<TierCounters>,
}

impl DagSummary {
    /// Loss fraction inside the window: failed / (completed + failed).
    pub fn loss(&self) -> f64 {
        let total = self.completed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.failed as f64 / total as f64
        }
    }
}

/// Reconciles a DAG run's per-tier counters against its structured
/// trace, bitwise: every DAG trace kind's whole-run total must equal the
/// matching counter sum, the window counts must equal the summary's
/// window counters, and the drain conservation identities must close.
pub fn dag_audit(summary: &DagSummary, rec: &Recorder) -> AuditReport {
    let mut sums = TierCounters::default();
    let mut non_root = (0u64, 0u64, 0u64); // dispatches vs sinks vs replies
    let mut reply_sinks = 0u64;
    for (tier, t) in summary.per_tier.iter().enumerate() {
        sums.dispatches += t.dispatches;
        sums.sheds += t.sheds;
        sums.served += t.served;
        sums.replies += t.replies;
        sums.failed_calls += t.failed_calls;
        sums.joins += t.joins;
        sums.hedge_cancels += t.hedge_cancels;
        sums.orphans += t.orphans;
        sums.edge_timeouts += t.edge_timeouts;
        sums.edge_retries += t.edge_retries;
        sums.hedges += t.hedges;
        if tier > 0 {
            non_root.0 += t.dispatches;
            non_root.1 += t.sheds + t.failed_calls + t.replies;
            non_root.2 += t.replies;
            reply_sinks += t.joins + t.hedge_cancels + t.orphans;
        }
    }
    let root = summary.per_tier.first().copied().unwrap_or_default();
    let check = |name: &'static str, from_trace: u64, from_summary: u64| AuditCheck {
        name,
        from_trace: from_trace as f64,
        from_summary: from_summary as f64,
    };
    let checks = vec![
        // Trace totals vs counter sums, whole run.
        check("dispatches", rec.total(TraceKind::DagDispatch), sums.dispatches),
        check("joins", rec.total(TraceKind::DagJoin), sums.joins),
        check("edge_retries", rec.total(TraceKind::DagEdgeRetry), sums.edge_retries),
        check("edge_timeouts", rec.total(TraceKind::ClientTimeout), sums.edge_timeouts),
        check("hedges", rec.total(TraceKind::Hedge), sums.hedges),
        check("hedge_cancels", rec.total(TraceKind::HedgeCancel), sums.hedge_cancels),
        check("sheds", rec.total(TraceKind::Shed), sums.sheds),
        check("served", rec.total(TraceKind::QueueExit), sums.served),
        check("queue_balance", rec.total(TraceKind::QueueEnter), rec.total(TraceKind::QueueExit)),
        check("root_replies", rec.total(TraceKind::Completion), root.replies),
        check("arrivals", rec.total(TraceKind::RequestArrive), summary.arrivals),
        // Window counts vs summary window counters.
        check("requests", rec.window_count(TraceKind::RequestArrive), summary.requests),
        check("completed", rec.completions_in_window(), summary.completed),
        check("failed", rec.window_count(TraceKind::Abandon), summary.failed),
        // Drain conservation: every dispatched call has exactly one fate,
        // and every reply exactly one reception.
        check("dispatch_conservation", non_root.0, non_root.1),
        check("reply_conservation", non_root.2, reply_sinks),
        check(
            "root_conservation",
            summary.arrivals,
            root.sheds + root.failed_calls + root.replies,
        ),
    ];
    AuditReport {
        server: summary.name.clone(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_audits_clean() {
        let summary = DagSummary {
            name: "empty".into(),
            requests: 0,
            completed: 0,
            failed: 0,
            arrivals: 0,
            goodput: 0.0,
            mean_rt_us: 0,
            p50_rt_us: 0,
            p99_rt_us: 0,
            tier_names: vec!["t0".into()],
            per_tier: vec![TierCounters::default()],
        };
        let rec = Recorder::new(16);
        let report = dag_audit(&summary, &rec);
        assert!(report.pass(), "{report}");
    }

    #[test]
    fn counter_drift_fails_the_audit() {
        // A dispatch count with no matching DagDispatch trace event.
        let t = TierCounters { dispatches: 1, ..TierCounters::default() };
        let summary = DagSummary {
            name: "drift".into(),
            requests: 0,
            completed: 0,
            failed: 0,
            arrivals: 0,
            goodput: 0.0,
            mean_rt_us: 0,
            p50_rt_us: 0,
            p99_rt_us: 0,
            tier_names: vec!["t0".into(), "t1".into()],
            per_tier: vec![TierCounters::default(), t],
        };
        let rec = Recorder::new(16);
        let report = dag_audit(&summary, &rec);
        assert!(!report.pass());
        let failed: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert!(failed.contains(&"dispatches"));
        assert!(failed.contains(&"dispatch_conservation"));
    }

    #[test]
    fn loss_fraction() {
        let mut s = DagSummary {
            name: "l".into(),
            requests: 10,
            completed: 8,
            failed: 2,
            arrivals: 10,
            goodput: 0.0,
            mean_rt_us: 0,
            p50_rt_us: 0,
            p99_rt_us: 0,
            tier_names: vec![],
            per_tier: vec![],
        };
        assert!((s.loss() - 0.2).abs() < 1e-12);
        s.completed = 0;
        s.failed = 0;
        assert_eq!(s.loss(), 0.0);
    }
}
