//! # asyncinv-dag — multi-tier async RPC service graphs over calibrated fleets
//!
//! The paper studies asynchronous invocation inside *one* server; real
//! deployments chain many such servers into microservice DAGs, where
//! per-tier architecture choice composes. This crate lifts the whole
//! `asyncinv` stack to that setting: a [`ServiceGraph`] describes tiers
//! (each a fleet of shards running any of the eight architectures from
//! `asyncinv-servers`, driven by `asyncinv-fleet` unchanged) and edges
//! (async RPCs with one-way latency, per-edge timeouts, Finagle-style
//! retry budgets and hedging), and a root open-loop arrival process
//! drives the graph deterministically on the `asyncinv-simcore` kernel.
//!
//! ## Two-level composition, honestly
//!
//! A fleet's drive loop is a sealed deterministic machine, so N fleets
//! cannot be interleaved event-by-event inside one kernel without
//! rebuilding them. The DAG layer therefore **calibrates, then
//! composes** (the `dslab-dag` shape): each tier's fleet is actually run
//! — via [`Cluster`](asyncinv_fleet::Cluster) or
//! [`ParallelCluster`](asyncinv_fleet::ParallelCluster), selected by
//! [`FleetDriver`] — to measure its service-time distribution and
//! per-request costs (write-spins, context switches, kernel crossings),
//! and the DAG simulation then models every tier as a finite-slot FIFO
//! station replaying that calibrated distribution. Queueing, timeouts,
//! retry storms and metastable collapse *emerge* from the composition;
//! per-visit service costs are the measured ones.
//!
//! Guarantees:
//!
//! - **Determinism** — same graph, same seed, same [`DagSummary`],
//!   bitwise, on any OS thread.
//! - **Single-node reduction** — a 1-tier graph with no edges delegates
//!   *verbatim* to the fleet driver: summary, trace stream and counters
//!   are bit-identical to the bare fleet run (property-tested across all
//!   eight architectures), and no DAG-only trace kinds are emitted.
//! - **Driver transparency** — because the interleaved and parallel
//!   fleet drivers are bit-identical (PR 6), a DAG run calibrated under
//!   either produces the identical [`DagSummary`] and trace.
//! - **Audited tracing** — the DAG trace kinds (`DagDispatch`,
//!   `DagJoin`, `DagEdgeRetry`, plus the reused client/fleet kinds)
//!   reconcile bitwise against the per-tier [`TierCounters`] via
//!   [`dag_audit`], and every completed request's span decomposition
//!   telescopes bitwise to its end-to-end response time
//!   ([`dag_span_audit`]).
//!
//! See `docs/dag.md` for the design discussion and
//! `bench/bin/dag_study` for the headline artifact: write-spin
//! amplification compounding with depth × fan-out, and a single slow
//! leaf collapsing end-to-end goodput under unbudgeted edge retries
//! while per-edge budgets + hedging contain it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibrate;
mod driver;
mod graph;
mod span;
mod summary;

pub use calibrate::{calibrate_tier, FleetDriver, TierProfile, LATTICE};
pub use driver::{DagOutcome, DagRun};
pub use graph::{ArrivalSpec, CalSpec, EdgeSpec, ServiceGraph, SlowTier, TierSpec, EDGE_ROOT};
pub use span::{dag_span_audit, DagAttempt, DagSpan, DagSpanStatus};
pub use summary::{dag_audit, DagSummary, TierCounters};
