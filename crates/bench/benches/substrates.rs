//! Criterion micro-benchmarks of the simulation substrates: the hot paths
//! every experiment cell exercises millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use asyncinv::substrate::{Burst, CpuConfig, CpuModel, SendBufPolicy, TcpConfig, TcpWorld};
use asyncinv::{Experiment, ExperimentConfig, ServerKind, SimDuration, SimTime};
use asyncinv_simcore::{AdaptiveQueue, CalendarQueue, EventQueue, QueueBackend, SimRng, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push(SimTime::from_nanos(i * 37 % 1000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_calendar_queue(c: &mut Criterion) {
    c.bench_function("calendar_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new();
            for i in 0..1024u64 {
                q.push(SimTime::from_nanos(i * 37 % 1000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    // The DES steady state: interleaved hold operations (pop one, push one
    // slightly in the future) over a standing population.
    for (name, pop) in [("hold_1k", 1_000u64), ("hold_16k", 16_000u64)] {
        c.bench_function(&format!("calendar_queue/{name}"), |b| {
            let mut q = CalendarQueue::new();
            let mut t = 0u64;
            for i in 0..pop {
                q.push(SimTime::from_nanos(i * 997), i);
            }
            b.iter(|| {
                let (pt, v) = q.pop().expect("non-empty");
                t = pt.as_nanos();
                q.push(SimTime::from_nanos(t + 1 + v % 2048), v);
                black_box(v)
            })
        });
        c.bench_function(&format!("event_queue/{name}"), |b| {
            let mut q = EventQueue::new();
            let mut t = 0u64;
            for i in 0..pop {
                q.push(SimTime::from_nanos(i * 997), i);
            }
            b.iter(|| {
                let (pt, v) = q.pop().expect("non-empty");
                t = pt.as_nanos();
                q.push(SimTime::from_nanos(t + 1 + v % 2048), v);
                black_box(v)
            })
        });
    }
}

/// Hold model (peek + pop-one + push-one over a constant population) for
/// every kernel backend at the standing populations the paper's cells
/// actually see: ~10 (low concurrency), ~100 (paper's headline cells), and
/// 10k (stress). This is the benchmark that justifies the adaptive
/// backend's switch thresholds.
fn bench_backend_hold(c: &mut Criterion) {
    fn hold<Q: QueueBackend<u64>>(c: &mut Criterion, name: &str, pop: u64) {
        c.bench_function(&format!("hold/{name}/pop{pop}"), |b| {
            let mut q = Q::default();
            for i in 0..pop {
                q.push(SimTime::from_nanos(i * 997), i);
            }
            b.iter(|| {
                black_box(q.peek_time());
                let (pt, v) = QueueBackend::pop(&mut q).expect("non-empty");
                q.push(SimTime::from_nanos(pt.as_nanos() + 1 + v % 2048), v);
                black_box(v)
            })
        });
    }
    for pop in [10u64, 100, 10_000] {
        hold::<EventQueue<u64>>(c, "heap", pop);
        hold::<CalendarQueue<u64>>(c, "calendar", pop);
        hold::<AdaptiveQueue<u64>>(c, "adaptive", pop);
    }
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_x1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("cpu/submit_complete_cycle", |b| {
        b.iter(|| {
            let mut cpu = CpuModel::new(CpuConfig::single_core());
            let mut sim: Simulation<asyncinv::substrate::CpuEvent> = Simulation::new();
            let t = cpu.spawn_thread("bench");
            let mut out = Vec::new();
            for i in 0..100u64 {
                cpu.submit(
                    sim.now(),
                    t,
                    Burst::user(SimDuration::from_micros(1)),
                    i,
                    &mut out,
                );
                for (at, ev) in out.drain(..) {
                    sim.schedule_at(at, ev);
                }
                while let Some((now, ev)) = sim.next_event() {
                    if let Some(done) = cpu.on_event(now, ev, &mut out) {
                        cpu.finish_turn(now, done.thread, &mut out);
                    }
                    for (at, ev) in out.drain(..) {
                        sim.schedule_at(at, ev);
                    }
                }
            }
            black_box(cpu.stats().user_time)
        })
    });
}

fn bench_tcp_write_path(c: &mut Criterion) {
    c.bench_function("tcp/write_spin_100kb", |b| {
        b.iter(|| {
            let mut world = TcpWorld::new(TcpConfig::default());
            let conn = world.open(SimTime::ZERO);
            let mut out = Vec::new();
            let mut now = SimTime::ZERO;
            let mut remaining = 100 * 1024usize;
            while remaining > 0 {
                let w = world.write(now, conn, remaining, &mut out);
                remaining -= w;
                if w == 0 {
                    // replay the earliest pending network event
                    out.sort_by_key(|(t, _)| *t);
                    let (t, e) = out.remove(0);
                    now = t;
                    world.on_event(now, e, &mut out);
                }
            }
            black_box(world.stats().write_calls)
        })
    });

    c.bench_function("tcp/one_shot_small_write", |b| {
        b.iter(|| {
            let mut world = TcpWorld::new(TcpConfig {
                send_buf: SendBufPolicy::Fixed(64 * 1024),
                ..TcpConfig::default()
            });
            let conn = world.open(SimTime::ZERO);
            let mut out = Vec::new();
            black_box(world.write(SimTime::ZERO, conn, 100, &mut out))
        })
    });
}

fn bench_experiment_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_cell");
    g.sample_size(10);
    for kind in [
        ServerKind::SyncThread,
        ServerKind::SingleThread,
        ServerKind::NettyLike,
        ServerKind::Hybrid,
    ] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::micro(8, 100);
                cfg.warmup = SimDuration::from_millis(50);
                cfg.measure = SimDuration::from_millis(200);
                black_box(Experiment::new(cfg).run(kind).completions)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_calendar_queue,
    bench_backend_hold,
    bench_rng,
    bench_scheduler,
    bench_tcp_write_path,
    bench_experiment_cells
);
criterion_main!(benches);
