//! # asyncinv-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (run with `cargo run --release
//! -p asyncinv-bench --bin <name>`), plus Criterion micro-benchmarks of the
//! simulation substrates (`cargo bench`).
//!
//! Every binary accepts `--quick` (or env `ASYNCINV_QUICK=1`) to shrink the
//! measurement windows for smoke runs, and `--threads N` (or env
//! `ASYNCINV_THREADS=N`) to bound the parallel cell runner; the recorded
//! numbers in `EXPERIMENTS.md` come from full runs.

#![forbid(unsafe_code)]

use asyncinv::fault::{FaultEvent, FaultKind, FaultPlan, ShedConfig, ShedPolicy};
use asyncinv::figures::Fidelity;
use asyncinv::fleet::{BalancerKind, FleetConfig, HedgeConfig, ShardFault, ShardShed};
use asyncinv::obs::audit;
use asyncinv::workload::RetryPolicy;
use asyncinv::{fmt_f64, Experiment, ExperimentConfig, RunSummary, ServerKind, SimDuration, Table};

/// Environment variable mirroring `--trace-out DIR`: directory receiving
/// `<artifact>.trace.json` (Chrome trace-event format) and
/// `<artifact>.trace.jsonl` exports from each harness binary.
pub const TRACE_OUT_ENV: &str = "ASYNCINV_TRACE_OUT";

/// Environment variable mirroring `--metrics-out DIR`: directory receiving
/// `<artifact>.metrics.json` registry exports from each harness binary.
pub const METRICS_OUT_ENV: &str = "ASYNCINV_METRICS_OUT";

/// Parses the common harness flags: `--quick` / `ASYNCINV_QUICK` for
/// fidelity, `--threads N` for the parallel cell runner, and
/// `--trace-out DIR` / `--metrics-out DIR` for observability exports.
///
/// `--threads` is applied by setting [`asyncinv::runner::THREADS_ENV`] in
/// this process's environment, which both routes it to
/// [`asyncinv::runner::configured_threads`] and lets child processes (the
/// per-artifact binaries spawned by `repro_all`) inherit it. The
/// observability flags mirror to [`TRACE_OUT_ENV`] / [`METRICS_OUT_ENV`]
/// the same way.
pub fn fidelity_from_args() -> Fidelity {
    apply_threads_arg();
    apply_obs_args();
    let quick_flag = std::env::args().any(|a| a == "--quick");
    let quick_env = std::env::var("ASYNCINV_QUICK").is_ok_and(|v| v == "1");
    if quick_flag || quick_env {
        Fidelity::Quick
    } else {
        Fidelity::Full
    }
}

/// Applies a `--threads N` (or `--threads=N`) command-line override to the
/// `ASYNCINV_THREADS` environment variable. Returns the parsed count, if
/// any. Malformed values are reported and ignored rather than killing an
/// artifact run.
pub fn apply_threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--threads" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => {
                std::env::set_var(asyncinv::runner::THREADS_ENV, n.to_string());
                return Some(n);
            }
            _ => {
                eprintln!(
                    "warning: ignoring malformed --threads value {:?} (expected an integer >= 1)",
                    value.unwrap_or_default()
                );
                return None;
            }
        }
    }
    None
}

/// Applies `--trace-out DIR` / `--metrics-out DIR` (or `=DIR`) overrides to
/// the [`TRACE_OUT_ENV`] / [`METRICS_OUT_ENV`] environment variables, so the
/// per-artifact binaries spawned by `repro_all` inherit them. Returns the
/// (trace, metrics) directories in effect, if any.
pub fn apply_obs_args() -> (Option<String>, Option<String>) {
    for (flag, env) in [("--trace-out", TRACE_OUT_ENV), ("--metrics-out", METRICS_OUT_ENV)] {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            let value = if a == flag {
                args.next()
            } else {
                a.strip_prefix(flag)
                    .and_then(|v| v.strip_prefix('='))
                    .map(str::to_string)
            };
            if let Some(dir) = value {
                if dir.is_empty() {
                    eprintln!("warning: ignoring empty {flag} value");
                } else {
                    std::env::set_var(env, &dir);
                }
                break;
            }
        }
    }
    (std::env::var(TRACE_OUT_ENV).ok(), std::env::var(METRICS_OUT_ENV).ok())
}

/// Runs one representative traced cell for `artifact` and writes the
/// observability exports:
///
/// * `<trace-out>/<artifact>.trace.json` — Chrome trace-event JSON (load in
///   Perfetto / `chrome://tracing`; one track per simulated thread).
/// * `<trace-out>/<artifact>.trace.jsonl` — the same events, one JSON
///   object per line.
/// * `<metrics-out>/<artifact>.metrics.json` — the metrics registry.
///
/// A no-op unless `--trace-out` / `--metrics-out` (or their environment
/// variables) are set, so untraced harness runs pay nothing. The traced
/// cell is also audited against its own `RunSummary`; a mismatch is
/// reported on stderr but does not kill the artifact run.
pub fn export_observability(artifact: &str, mut cfg: ExperimentConfig, kind: ServerKind) {
    let trace_dir = std::env::var(TRACE_OUT_ENV).ok();
    let metrics_dir = std::env::var(METRICS_OUT_ENV).ok();
    if trace_dir.is_none() && metrics_dir.is_none() {
        return;
    }
    if cfg.trace_capacity == 0 {
        cfg.trace_capacity = 1 << 16;
    }
    let (summary, rec) = Experiment::new(cfg).run_traced(kind);
    let report = audit(&summary, &rec);
    if !report.pass() {
        eprintln!("warning: {artifact} trace audit failed:\n{report}");
    }
    write_exports(artifact, trace_dir.as_deref(), metrics_dir.as_deref(), &rec);
}

/// RUBBoS variant of [`export_observability`]: a short traced macro run of
/// the asynchronous Tomcat with the given user population. No audit — the
/// macro engine reports a [`asyncinv::rubbos::RubbosSummary`], which the
/// Table I/II audit does not cover.
pub fn export_observability_rubbos(artifact: &str, users: usize) {
    let trace_dir = std::env::var(TRACE_OUT_ENV).ok();
    let metrics_dir = std::env::var(METRICS_OUT_ENV).ok();
    if trace_dir.is_none() && metrics_dir.is_none() {
        return;
    }
    let mut exp = asyncinv::rubbos::RubbosExperiment::new(users);
    exp.warmup = asyncinv::SimDuration::from_secs(2);
    exp.measure = asyncinv::SimDuration::from_secs(5);
    let (_, rec) = exp.run_traced(ServerKind::AsyncPool, 1 << 16);
    write_exports(artifact, trace_dir.as_deref(), metrics_dir.as_deref(), &rec);
}

fn write_exports(
    artifact: &str,
    trace_dir: Option<&str>,
    metrics_dir: Option<&str>,
    rec: &asyncinv::obs::Recorder,
) {
    let write = |dir: &str, file: String, body: String| {
        let path = std::path::Path::new(dir).join(file);
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    };
    if let Some(dir) = trace_dir {
        write(dir, format!("{artifact}.trace.json"), rec.chrome_trace_json());
        write(dir, format!("{artifact}.trace.jsonl"), rec.jsonl());
    }
    if let Some(dir) = metrics_dir {
        write(dir, format!("{artifact}.metrics.json"), rec.registry().to_json());
    }
}

/// Convenience wrapper over [`export_observability`] for the standard
/// micro-benchmark cell shape: a short traced run of `kind` at the given
/// concurrency and response size.
pub fn export_observability_micro(
    artifact: &str,
    concurrency: usize,
    bytes: usize,
    kind: ServerKind,
) {
    let mut cfg = ExperimentConfig::micro(concurrency, bytes);
    cfg.warmup = asyncinv::SimDuration::from_millis(200);
    cfg.measure = asyncinv::SimDuration::from_secs(1);
    export_observability(artifact, cfg, kind);
}

/// The stressed 3-shard fleet every span-layer harness measures on:
/// power-of-two-choices balancing, hedged requests, a tight 5 ms retry
/// timeout, a ×16 slowdown on shard 1 mid-run and a drastically shedding
/// shard 2 — so retries, hedges, rejections and dead wait all contribute
/// real time to the span trees. Used by `latency_breakdown` (the
/// committed phase-attribution artifact), `span_audit` (with the
/// balancer swept) and `kernel_bench`'s fleet-observability row, so the
/// overhead numbers describe the same workload as the artifact.
pub fn stressed_span_fleet(balancer: BalancerKind, quick: bool) -> FleetConfig {
    let mut cell = ExperimentConfig::micro(8, 10 * 1024);
    cell.warmup = SimDuration::from_millis(100);
    cell.measure = SimDuration::from_millis(if quick { 300 } else { 1500 });
    // The span audit insists the ring retained every event (a sampled or
    // truncated trace cannot conserve anything bitwise), so the capacity
    // must cover the whole run: ~25k requests × ~20 events at full
    // fidelity.
    cell.trace_capacity = if quick { 1 << 18 } else { 1 << 21 };
    // 5 ms is ~10× the healthy response time but well under the ~8 ms
    // responses the ×16 slowdown produces, so the retry plane (timeouts,
    // backoff, dead wait on the abandoned first attempt) actually engages
    // during the fault window instead of attributing zero everywhere.
    cell.retry = RetryPolicy {
        timeout: Some(SimDuration::from_millis(5)),
        max_retries: 3,
        budget_ratio: 0.5,
        ..RetryPolicy::default()
    };
    let mut cfg = FleetConfig::new(cell, 3, balancer);
    cfg.hedge = Some(HedgeConfig {
        min_samples: 16,
        ..HedgeConfig::default()
    });
    cfg.shard_faults = vec![ShardFault {
        shard: 1,
        plan: FaultPlan {
            seed: 5,
            events: vec![FaultEvent {
                at: SimDuration::from_millis(200),
                fault: FaultKind::Slowdown {
                    factor: 16.0,
                    duration: Some(SimDuration::from_millis(150)),
                },
            }],
        },
    }];
    // A drastically shed shard: requests routed there are rejected or
    // evicted, so the retry plane (backoff, dead wait on the failed
    // attempt) contributes real time to the breakdown.
    cfg.shard_shed = vec![ShardShed {
        shard: 2,
        shed: ShedConfig {
            max_concurrent: 1,
            queue_cap: 1,
            policy: ShedPolicy::DropOldest,
            reject_bytes: 256,
        },
    }];
    cfg
}

/// Renders a throughput-oriented table of run summaries, one row each.
pub fn throughput_table(rows: &[RunSummary]) -> Table {
    let mut t = Table::new(vec![
        "server".into(),
        "conc".into(),
        "resp[B]".into(),
        "lat[us]".into(),
        "tput[req/s]".into(),
        "mean RT".into(),
        "p99 RT".into(),
        "cs/req".into(),
        "writes/req".into(),
        "cpu%".into(),
    ]);
    t.numeric();
    for r in rows {
        t.row(vec![
            r.server.clone(),
            r.concurrency.to_string(),
            r.response_size.to_string(),
            r.added_latency_us.to_string(),
            fmt_f64(r.throughput, 1),
            format!("{:.2}ms", r.mean_rt_us as f64 / 1000.0),
            format!("{:.2}ms", r.p99_rt_us as f64 / 1000.0),
            fmt_f64(r.cs_per_req, 2),
            fmt_f64(r.writes_per_req, 2),
            fmt_f64(r.cpu.utilization() * 100.0, 1),
        ]);
    }
    t
}

/// Prints a table and, when `ASYNCINV_CSV_DIR` is set, also writes it as
/// `<dir>/<name>.csv` so plots can be regenerated from the harness runs.
pub fn print_and_export(name: &str, table: &Table) {
    println!("{table}");
    if let Ok(dir) = std::env::var("ASYNCINV_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Prints a standard harness header.
pub fn banner(artifact: &str, claim: &str) {
    println!("================================================================");
    println!("asyncinv reproduction — {artifact}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_table_renders_all_rows() {
        let rows = vec![
            RunSummary {
                server: "A".into(),
                throughput: 123.456,
                ..RunSummary::default()
            },
            RunSummary {
                server: "B".into(),
                ..RunSummary::default()
            },
        ];
        let t = throughput_table(&rows);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("123.5"));
    }
}
