//! # asyncinv-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (run with `cargo run --release
//! -p asyncinv-bench --bin <name>`), plus Criterion micro-benchmarks of the
//! simulation substrates (`cargo bench`).
//!
//! Every binary accepts `--quick` (or env `ASYNCINV_QUICK=1`) to shrink the
//! measurement windows for smoke runs, and `--threads N` (or env
//! `ASYNCINV_THREADS=N`) to bound the parallel cell runner; the recorded
//! numbers in `EXPERIMENTS.md` come from full runs.

use asyncinv::figures::Fidelity;
use asyncinv::{fmt_f64, RunSummary, Table};

/// Parses the common harness flags: `--quick` / `ASYNCINV_QUICK` for
/// fidelity, and `--threads N` for the parallel cell runner.
///
/// `--threads` is applied by setting [`asyncinv::runner::THREADS_ENV`] in
/// this process's environment, which both routes it to
/// [`asyncinv::runner::configured_threads`] and lets child processes (the
/// per-artifact binaries spawned by `repro_all`) inherit it.
pub fn fidelity_from_args() -> Fidelity {
    apply_threads_arg();
    let quick_flag = std::env::args().any(|a| a == "--quick");
    let quick_env = std::env::var("ASYNCINV_QUICK").is_ok_and(|v| v == "1");
    if quick_flag || quick_env {
        Fidelity::Quick
    } else {
        Fidelity::Full
    }
}

/// Applies a `--threads N` (or `--threads=N`) command-line override to the
/// `ASYNCINV_THREADS` environment variable. Returns the parsed count, if
/// any. Malformed values are reported and ignored rather than killing an
/// artifact run.
pub fn apply_threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--threads" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => {
                std::env::set_var(asyncinv::runner::THREADS_ENV, n.to_string());
                return Some(n);
            }
            _ => {
                eprintln!(
                    "warning: ignoring malformed --threads value {:?} (expected an integer >= 1)",
                    value.unwrap_or_default()
                );
                return None;
            }
        }
    }
    None
}

/// Renders a throughput-oriented table of run summaries, one row each.
pub fn throughput_table(rows: &[RunSummary]) -> Table {
    let mut t = Table::new(vec![
        "server".into(),
        "conc".into(),
        "resp[B]".into(),
        "lat[us]".into(),
        "tput[req/s]".into(),
        "mean RT".into(),
        "p99 RT".into(),
        "cs/req".into(),
        "writes/req".into(),
        "cpu%".into(),
    ]);
    t.numeric();
    for r in rows {
        t.row(vec![
            r.server.clone(),
            r.concurrency.to_string(),
            r.response_size.to_string(),
            r.added_latency_us.to_string(),
            fmt_f64(r.throughput, 1),
            format!("{:.2}ms", r.mean_rt_us as f64 / 1000.0),
            format!("{:.2}ms", r.p99_rt_us as f64 / 1000.0),
            fmt_f64(r.cs_per_req, 2),
            fmt_f64(r.writes_per_req, 2),
            fmt_f64(r.cpu.utilization() * 100.0, 1),
        ]);
    }
    t
}

/// Prints a table and, when `ASYNCINV_CSV_DIR` is set, also writes it as
/// `<dir>/<name>.csv` so plots can be regenerated from the harness runs.
pub fn print_and_export(name: &str, table: &Table) {
    println!("{table}");
    if let Ok(dir) = std::env::var("ASYNCINV_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, table.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Prints a standard harness header.
pub fn banner(artifact: &str, claim: &str) {
    println!("================================================================");
    println!("asyncinv reproduction — {artifact}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_table_renders_all_rows() {
        let rows = vec![
            RunSummary {
                server: "A".into(),
                throughput: 123.456,
                ..RunSummary::default()
            },
            RunSummary {
                server: "B".into(),
                ..RunSummary::default()
            },
        ];
        let t = throughput_table(&rows);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("123.5"));
    }
}
