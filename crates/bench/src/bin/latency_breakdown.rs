//! **latency_breakdown** — where the milliseconds go, per architecture.
//!
//! Extends the paper's latency figures (Figs 9–11) below the mean: for
//! every server architecture, runs the stressed 3-shard fleet (retries,
//! hedging, a mid-run shard slowdown) on the parallel driver, folds the
//! trace into causal span trees, and attributes every completed request's
//! end-to-end response time to phases — network one-way, accept wait,
//! queue wait, CPU service, write delivery, write spin, retry backoff,
//! hedge wait. Attribution is **bitwise-conserved**: each request's phase
//! durations sum to its recorded response time exactly, so the table's
//! per-phase means add up to the mean response time with no residual.
//!
//! A machine-readable artifact is written to `--json <path>` (default
//! `results/latency_breakdown.json`); the committed copy backs the
//! "Where the milliseconds go" table in `EXPERIMENTS.md`. With
//! `--trace-out DIR`, nested Chrome-trace async spans
//! (`latency_breakdown.spans.trace.json`, loadable in Perfetto) and a
//! spans JSONL export are also written for the last architecture.
//!
//! The parallel-driver health sidecar — conservative-sync window widths,
//! horizon-limited windows, per-worker busy/idle wall time — is printed
//! as a second table.

use asyncinv::fleet::{BalancerKind, ParallelCluster};
use asyncinv::obs::{span_audit, spans_chrome_json, spans_jsonl, Phase, SpanAssembler};
use asyncinv::{fmt_f64, ServerKind, Table};
use asyncinv_bench::{banner, fidelity_from_args, stressed_span_fleet, TRACE_OUT_ENV};
use serde::Serialize;

/// One architecture's phase attribution, exported with `--json`.
#[derive(Debug, Serialize)]
struct BreakdownRow {
    server: String,
    balancer: String,
    shards: usize,
    requests: u64,
    mean_rt_us: f64,
    /// Exact per-phase nanosecond totals over all completed requests;
    /// they sum to `total_rt_ns` bitwise.
    phases_ns: Vec<PhaseNs>,
    total_rt_ns: u64,
    conserved: bool,
}

/// One phase's exact nanosecond total in the JSON artifact.
#[derive(Debug, Serialize)]
struct PhaseNs {
    phase: String,
    ns: u64,
}

fn main() {
    banner(
        "latency breakdown: critical-path phase attribution (extends Figs 9-11)",
        "each architecture's mean response time decomposes exactly into accept \
         wait, queue wait, CPU service, write delivery, write spin, retry \
         backoff, hedge wait and network phases",
    );
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);
    let mut json_out = "results/latency_breakdown.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                json_out = p;
            }
        } else if let Some(p) = a.strip_prefix("--json=") {
            json_out = p.to_string();
        }
    }

    let mut cols = vec!["server".into(), "reqs".into(), "mean RT".into()];
    cols.extend(Phase::ALL.iter().map(|p| format!("{}[us]", p.name())));
    let mut t = Table::new(cols);
    t.numeric();
    let mut health_t = Table::new(vec![
        "server".into(),
        "batches".into(),
        "jobs".into(),
        "win mean[us]".into(),
        "win max[us]".into(),
        "horizon-lim%".into(),
        "coord busy[ms]".into(),
        "coord wait[ms]".into(),
        "worker busy[ms]".into(),
        "worker idle[ms]".into(),
    ]);
    health_t.numeric();

    let mut rows: Vec<BreakdownRow> = Vec::new();
    let mut failures = 0usize;
    let mut last_forest = None;
    for kind in ServerKind::ALL {
        let cfg = stressed_span_fleet(BalancerKind::PowerOfTwoChoices { seed: 0x5eed }, quick);
        let cluster = ParallelCluster::new(cfg);
        let (summary, rec, health) = cluster.run_traced_health(kind);
        let forest = SpanAssembler::assemble(&rec);
        let report = span_audit(&summary.fleet.server, &rec, &forest);
        if !report.pass() {
            failures += 1;
            eprintln!("{} span audit failure:\n{report}", summary.fleet.server);
        }
        // The artifact's claim: per-request phase sums equal recorded
        // response times exactly, so the aggregate decomposes the total.
        let conserved = forest.trees.iter().all(|tr| tr.phases.total() == tr.rt_ns);
        if !conserved {
            failures += 1;
            eprintln!("{}: phase sums diverged from rt", summary.fleet.server);
        }
        let agg = forest.aggregate_completed();
        let n = forest.completed().count() as u64;
        let per_req_us = |ns: u64| {
            if n == 0 {
                0.0
            } else {
                ns as f64 / n as f64 / 1000.0
            }
        };
        let mut row = vec![
            summary.fleet.server.clone(),
            n.to_string(),
            format!("{:.2}ms", per_req_us(agg.total()) / 1000.0),
        ];
        row.extend(Phase::ALL.iter().map(|&p| fmt_f64(per_req_us(agg.get(p)), 1)));
        t.row(row);

        let ms = |ns: u64| ns as f64 / 1e6;
        let wb: u64 = health.workers.iter().map(|w| w.busy_ns).sum();
        let wi: u64 = health.workers.iter().map(|w| w.idle_ns).sum();
        health_t.row(vec![
            summary.fleet.server.clone(),
            health.batches.to_string(),
            health.jobs.to_string(),
            fmt_f64(health.window_ns_mean() / 1000.0, 1),
            fmt_f64(health.window_ns_max as f64 / 1000.0, 1),
            fmt_f64(
                if health.jobs == 0 {
                    0.0
                } else {
                    100.0 * health.horizon_limited as f64 / health.jobs as f64
                },
                1,
            ),
            fmt_f64(ms(health.coord_busy_ns), 1),
            fmt_f64(ms(health.coord_wait_ns), 1),
            fmt_f64(ms(wb), 1),
            fmt_f64(ms(wi), 1),
        ]);

        rows.push(BreakdownRow {
            server: summary.fleet.server.clone(),
            balancer: "p2c".into(),
            shards: 3,
            requests: n,
            mean_rt_us: per_req_us(agg.total()),
            phases_ns: Phase::ALL
                .iter()
                .map(|&p| PhaseNs {
                    phase: p.name().to_string(),
                    ns: agg.get(p),
                })
                .collect(),
            total_rt_ns: agg.total(),
            conserved,
        });
        last_forest = Some(forest);
    }

    asyncinv_bench::print_and_export("latency_breakdown", &t);
    println!("\nparallel driver health (wall-clock columns vary run to run):");
    println!("{health_t}");

    if let Some(dir) = std::path::Path::new(&json_out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let json = serde_json::to_string_pretty(&rows).expect("serialize breakdown");
    std::fs::write(&json_out, json + "\n").expect("write breakdown json");
    println!("wrote {json_out}");

    if let (Ok(dir), Some(forest)) = (std::env::var(TRACE_OUT_ENV), last_forest) {
        let _ = std::fs::create_dir_all(&dir);
        let base = std::path::Path::new(&dir);
        let tr = base.join("latency_breakdown.spans.trace.json");
        let jl = base.join("latency_breakdown.spans.jsonl");
        std::fs::write(&tr, spans_chrome_json(&forest)).expect("write span trace");
        std::fs::write(&jl, spans_jsonl(&forest)).expect("write spans jsonl");
        println!("wrote {} and {}", tr.display(), jl.display());
    }

    if failures > 0 {
        eprintln!("latency breakdown: {failures} architectures FAILED conservation");
        std::process::exit(1);
    }
    println!("latency breakdown: all phase attributions conserve response time bitwise");
}
