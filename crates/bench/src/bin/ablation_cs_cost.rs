//! **Ablation** — context-switch cost sensitivity.
//!
//! The paper's context-switch argument should hold across plausible switch
//! costs; this sweep varies the base cost from 1 to 25 µs and reports the
//! sTomcat-Async vs sTomcat-Sync gap at concurrency 8 / 0.1 KB.

use asyncinv::{fmt_f64, Experiment, ExperimentConfig, ServerKind, SimDuration, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Ablation: context-switch cost sensitivity",
        "the async pool's deficit scales with the per-switch cost",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut t = Table::new(vec![
        "cs cost".into(),
        "sync tput".into(),
        "asyncpool tput".into(),
        "async/sync".into(),
    ]);
    t.numeric();
    for &us in &[1u64, 5, 10, 25] {
        let mut cfg = ExperimentConfig::micro(8, 100);
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.cpu.cs_cost = SimDuration::from_micros(us);
        let exp = Experiment::new(cfg);
        let sync = exp.run(ServerKind::SyncThread);
        let pool = exp.run(ServerKind::AsyncPool);
        t.row(vec![
            format!("{us}us"),
            fmt_f64(sync.throughput, 1),
            fmt_f64(pool.throughput, 1),
            fmt_f64(pool.throughput / sync.throughput, 3),
        ]);
    }
    asyncinv_bench::print_and_export("ablation_cs_cost", &t);
}
