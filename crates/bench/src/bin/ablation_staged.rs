//! **Ablation** — the SEDA/WatPipe staged pipeline (paper Section II-A,
//! described but not measured there).
//!
//! Compares the staged design against the paper's architectures across
//! concurrency and response sizes, and sweeps the per-stage pool size.
//! Stage handoffs amortize with queue depth just like the reactor pool's
//! dispatches, so the staged server tracks sTomcat-Async-Fix at low
//! concurrency and the batched designs at high concurrency.

use asyncinv::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: staged (SEDA/WatPipe) pipeline",
        "stage handoffs cost like reactor dispatches and amortize with load",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &(conc, size) in &[(1usize, 100usize), (8, 100), (64, 100), (8, 100 * 1024)] {
        for kind in [
            ServerKind::Staged,
            ServerKind::AsyncPoolFix,
            ServerKind::SingleThread,
        ] {
            let mut cfg = ExperimentConfig::micro(conc, size);
            cfg.warmup = warmup;
            cfg.measure = measure;
            rows.push(Experiment::new(cfg).run(kind));
        }
    }
    asyncinv_bench::print_and_export("ablation_staged", &throughput_table(&rows));

    println!("per-stage pool size sweep (conc 64, 0.1 KB):");
    let mut rows = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let mut cfg = ExperimentConfig::micro(64, 100);
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.staged_workers = workers;
        let mut s = Experiment::new(cfg).run(ServerKind::Staged);
        s.server = format!("Staged/{workers}w");
        rows.push(s);
    }
    asyncinv_bench::print_and_export("ablation_staged", &throughput_table(&rows));
}
