//! **resilience** — fault-intensity × retry-policy sweep (extension
//! beyond the paper): goodput under injected faults, retry amplification,
//! and retry-storm hysteresis.
//!
//! The scenario is a mid-run *capacity fault*: every core runs `factor`×
//! slower for a window in the middle of the measurement period (thermal
//! throttling / noisy neighbor / GC storm). Clients apply one of four
//! resilience policies; the harness reports goodput in the **before /
//! during / after** phases, the recovery ratio (after ÷ before — below 1
//! means the system stayed degraded after the fault cleared, the
//! retry-storm hysteresis), and retry amplification (attempts per
//! completed request).
//!
//! A second table holds the retry policy fixed and sweeps the server-side
//! load-shedding policy (none / drop-new / drop-oldest / reject-fast)
//! under the heaviest fault.
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin resilience             # full
//! cargo run --release -p asyncinv-bench --bin resilience -- --quick  # smoke
//! cargo run --release -p asyncinv-bench --bin resilience -- \
//!     --scenario scenarios/retry_storm.json                # checked-in plan
//! cargo run --release -p asyncinv-bench --bin resilience -- --write-scenario
//! ```
//!
//! The `--scenario` run asserts the checked-in plan has not drifted from
//! the canonical storm in this file (regenerate with `--write-scenario`).
//!
//! All runs are seeded and deterministic; set `ASYNCINV_RESILIENCE_OUT` to
//! also write the sweep as JSON.

use asyncinv::fault::{FaultEvent, FaultKind, FaultPlan};
use asyncinv::obs::{audit, Observer, TraceEvent, TraceKind};
use asyncinv::workload::{RetryPolicy, TimeoutMode};
use asyncinv::{
    fmt_f64, Experiment, ExperimentConfig, ServerKind, ShedConfig, ShedPolicy, SimDuration,
    SimTime, Table,
};
use asyncinv_bench::{banner, fidelity_from_args, print_and_export};
use serde::Serialize;

const SCENARIO: &str = "scenarios/retry_storm.json";

/// The checked-in storm plan, reproducibly: `--write-scenario` serializes
/// this, `--scenario` asserts the JSON still matches it. A 16× slowdown
/// for 500 ms in the middle of the full-fidelity measurement window.
fn storm_scenario() -> FaultPlan {
    FaultPlan {
        seed: 2209,
        events: vec![FaultEvent {
            at: SimDuration::from_millis(700),
            fault: FaultKind::Slowdown {
                factor: 16.0,
                duration: Some(SimDuration::from_millis(500)),
            },
        }],
    }
}

/// Counts completions and retries into fixed time bins over the whole run,
/// so phase goodput comes from the event stream without retaining it.
struct PhaseObserver {
    bin: SimDuration,
    completions: Vec<u64>,
    retries: Vec<u64>,
}

impl PhaseObserver {
    fn new(total: SimDuration, bin: SimDuration) -> Self {
        let n = (total.as_nanos() / bin.as_nanos() + 2) as usize;
        PhaseObserver {
            bin,
            completions: vec![0; n],
            retries: vec![0; n],
        }
    }

    fn index(&self, t: SimTime) -> usize {
        ((t.as_nanos() / self.bin.as_nanos()) as usize).min(self.completions.len() - 1)
    }

    /// Completions with `start <= t < end`, as a rate per second.
    ///
    /// Phase boundaries are always whole bins here, so summing bins is
    /// exact, not an approximation.
    fn goodput(&self, start: SimTime, end: SimTime) -> f64 {
        let (a, b) = (self.index(start), self.index(end));
        let done: u64 = self.completions[a..b].iter().sum();
        done as f64 / end.duration_since(start).as_secs_f64().max(1e-12)
    }

    /// Time from `fault_end` until the per-bin goodput first returns to
    /// 90% of `before` (and the retry stream has dried up), or `None` if
    /// it never does before `end` — the hysteresis measurement.
    fn recovery_time(
        &self,
        fault_end: SimTime,
        end: SimTime,
        before: f64,
    ) -> Option<SimDuration> {
        let per_bin = before * self.bin.as_secs_f64() * 0.9;
        let (a, b) = (self.index(fault_end), self.index(end));
        for i in a..b {
            if self.completions[i] as f64 >= per_bin && self.retries[i] == 0 {
                return Some(self.bin * (i - a) as u64);
            }
        }
        None
    }
}

impl Observer for PhaseObserver {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        let i = self.index(ev.time);
        match ev.kind {
            TraceKind::Completion => self.completions[i] += 1,
            TraceKind::Retry => self.retries[i] += 1,
            _ => {}
        }
    }
}

/// One sweep point, also exported as JSON.
#[derive(Debug, Serialize)]
struct SweepRow {
    policy: String,
    shed: String,
    slowdown: f64,
    goodput: f64,
    before: f64,
    during: f64,
    after: f64,
    recovery: f64,
    /// Milliseconds after the fault cleared until goodput returned to 90%
    /// of the pre-fault level with no retries in flight; `None` = never
    /// within the run.
    recovered_ms: Option<f64>,
    attempts_per_req: f64,
    timeouts: u64,
    retries: u64,
    abandoned: u64,
    rejected: u64,
    shed_dropped: u64,
}

struct Phases {
    fault_at: SimDuration,
    fault_len: SimDuration,
}

fn storm_plan(factor: f64, p: &Phases) -> FaultPlan {
    FaultPlan {
        seed: 7,
        events: vec![FaultEvent {
            at: p.fault_at,
            fault: FaultKind::Slowdown {
                factor,
                duration: Some(p.fault_len),
            },
        }],
    }
}

/// The four client policies of the study. `timeout` comes from calibration
/// against the unfaulted baseline.
fn policies(timeout: SimDuration) -> Vec<(&'static str, RetryPolicy)> {
    let base = RetryPolicy {
        timeout: Some(timeout),
        backoff_base: SimDuration::from_millis(1),
        backoff_mult: 2.0,
        backoff_cap: SimDuration::from_millis(50),
        jitter_frac: 0.1,
        ..RetryPolicy::default()
    };
    vec![
        ("none", RetryPolicy::default()),
        (
            "timeout",
            RetryPolicy {
                max_retries: 0,
                ..base
            },
        ),
        (
            "retry",
            RetryPolicy {
                max_retries: 5,
                ..base
            },
        ),
        (
            "retry+budget",
            RetryPolicy {
                max_retries: 5,
                budget_ratio: 0.2,
                budget_cap: 10.0,
                ..base
            },
        ),
        // Jacobson/Karels adaptive timeout: starts from the calibrated
        // value, tracks SRTT+4·RTTVAR online, and Karn-doubles across
        // consecutive timeouts — so the fault window widens the timeout
        // instead of hammering a stormed server with fixed-deadline
        // retries.
        (
            "retry+rto",
            RetryPolicy {
                max_retries: 5,
                timeout_mode: TimeoutMode::Rto,
                ..base
            },
        ),
    ]
}

fn cell(quick: bool) -> (ExperimentConfig, Phases) {
    let mut cfg = ExperimentConfig::micro(100, 10 * 1024);
    cfg.warmup = SimDuration::from_millis(200);
    cfg.measure = SimDuration::from_secs(if quick { 1 } else { 2 });
    // Fault window: the second quarter of the measurement period, so the
    // "after" phase is twice as long as the fault and recovery is visible.
    let phases = Phases {
        fault_at: cfg.warmup + cfg.measure / 4,
        fault_len: cfg.measure / 4,
    };
    (cfg, phases)
}

fn run_point(
    cfg: &ExperimentConfig,
    phases: &Phases,
    kind: ServerKind,
    label_policy: &str,
    label_shed: &str,
    slowdown: f64,
) -> SweepRow {
    let total = cfg.warmup + cfg.measure;
    // 20 bins per measurement period; phase edges are whole bins because
    // fault_at and fault_len are quarter-period aligned.
    let mut obs = PhaseObserver::new(total, cfg.measure / 20);
    let summary = Experiment::new(cfg.clone()).run_observed(kind, &mut obs);
    let warm = SimTime::ZERO + cfg.warmup;
    let fault_start = SimTime::ZERO + phases.fault_at;
    let fault_end = fault_start + phases.fault_len;
    let end = SimTime::ZERO + total;
    let before = obs.goodput(warm, fault_start);
    let during = obs.goodput(fault_start, fault_end);
    let after = obs.goodput(fault_end, end);
    let recovered_ms = obs
        .recovery_time(fault_end, end, before)
        .map(|d| d.as_nanos() as f64 / 1e6);
    SweepRow {
        policy: label_policy.into(),
        shed: label_shed.into(),
        slowdown,
        goodput: summary.throughput,
        before,
        during,
        after,
        recovery: if before > 0.0 { after / before } else { 0.0 },
        recovered_ms,
        attempts_per_req: if summary.completions > 0 {
            (summary.completions + summary.retries) as f64 / summary.completions as f64
        } else {
            0.0
        },
        timeouts: summary.timeouts,
        retries: summary.retries,
        abandoned: summary.abandoned,
        rejected: summary.rejected,
        shed_dropped: summary.shed_dropped,
    }
}

fn sweep_table(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(vec![
        "policy".into(),
        "shed".into(),
        "slow x".into(),
        "goodput[req/s]".into(),
        "before".into(),
        "during".into(),
        "after".into(),
        "recovery".into(),
        "recov[ms]".into(),
        "att/req".into(),
        "timeouts".into(),
        "retries".into(),
        "abandoned".into(),
        "shed/rej".into(),
    ]);
    t.numeric();
    for r in rows {
        t.row(vec![
            r.policy.clone(),
            r.shed.clone(),
            fmt_f64(r.slowdown, 0),
            fmt_f64(r.goodput, 1),
            fmt_f64(r.before, 1),
            fmt_f64(r.during, 1),
            fmt_f64(r.after, 1),
            fmt_f64(r.recovery, 3),
            r.recovered_ms
                .map_or("never".into(), |ms| fmt_f64(ms, 0)),
            fmt_f64(r.attempts_per_req, 3),
            r.timeouts.to_string(),
            r.retries.to_string(),
            r.abandoned.to_string(),
            (r.shed_dropped + r.rejected).to_string(),
        ]);
    }
    t
}

/// `--scenario <file>`: run a checked-in `FaultPlan` JSON against the
/// standard cell with the storm retry policy, traced, and reconcile the
/// injected-vs-observed fault counters through the trace audit.
fn run_scenario(path: &str, quick: bool) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: could not read {path}: {e}");
        std::process::exit(2);
    });
    let plan: FaultPlan = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid FaultPlan: {e}");
        std::process::exit(2);
    });
    if let Err(e) = plan.validate() {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    }
    assert_eq!(
        plan,
        storm_scenario(),
        "checked-in scenario drifted from source (regenerate with --write-scenario)"
    );
    banner(
        "resilience — scenario run",
        "fault events injected by the plan reconcile bitwise with the trace",
    );
    println!(
        "scenario {path}: seed {} with {} scheduled faults",
        plan.seed,
        plan.events.len()
    );
    let (mut cfg, _) = cell(quick);
    cfg.trace_capacity = 1 << 14;
    cfg.faults = Some(plan);
    cfg.retry = policies(SimDuration::from_millis(10))[2].1;
    let mut failures = 0;
    let mut t = Table::new(vec![
        "server".into(),
        "goodput[req/s]".into(),
        "faults".into(),
        "timeouts".into(),
        "retries".into(),
        "abandoned".into(),
        "audit".into(),
    ]);
    t.numeric();
    for kind in [ServerKind::SyncThread, ServerKind::NettyLike] {
        let (summary, rec) = Experiment::new(cfg.clone()).run_traced(kind);
        let report = audit(&summary, &rec);
        if !report.pass() {
            failures += 1;
            eprintln!("{} scenario audit failure:\n{report}", summary.server);
        }
        t.row(vec![
            summary.server.clone(),
            fmt_f64(summary.throughput, 1),
            summary.fault_events.to_string(),
            summary.timeouts.to_string(),
            summary.retries.to_string(),
            summary.abandoned.to_string(),
            if report.pass() { "ok".into() } else { "FAIL".into() },
        ]);
    }
    print_and_export("resilience_scenario", &t);
    if failures > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--write-scenario" {
            let json = serde_json::to_string_pretty(&storm_scenario()).expect("serialize scenario");
            std::fs::create_dir_all("scenarios").expect("mkdir scenarios");
            std::fs::write(SCENARIO, json + "\n").expect("write scenario");
            println!("wrote {SCENARIO}");
            return;
        }
        if a == "--scenario" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: resilience --scenario <plan.json>");
                std::process::exit(2);
            });
            let quick = std::env::args().any(|x| x == "--quick");
            run_scenario(&path, quick);
            return;
        }
    }

    banner(
        "resilience: fault intensity × retry policy (extension)",
        "unbudgeted retries amplify a transient capacity fault into a \
         retry storm; a retry budget restores post-fault goodput",
    );
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);
    let (cfg, phases) = cell(quick);
    let kind = ServerKind::NettyLike;

    // Calibrate the client timeout against the unfaulted baseline: long
    // enough to never fire in steady state, short enough to fire during
    // the fault window.
    let baseline = Experiment::new(cfg.clone()).run(kind);
    let timeout =
        SimDuration::from_micros((baseline.p99_rt_us * 3).max(1_000)).min(phases.fault_len / 4);
    println!(
        "\nbaseline ({}): {} req/s, p99 {:.2} ms -> client timeout {}\n",
        baseline.server,
        fmt_f64(baseline.throughput, 1),
        baseline.p99_rt_us as f64 / 1e3,
        timeout
    );

    // --- 1. Fault intensity × client retry policy. ---
    let mut rows = Vec::new();
    for &factor in &[1.0f64, 4.0, 16.0] {
        for (name, policy) in policies(timeout) {
            let mut c = cfg.clone();
            if factor > 1.0 {
                c.faults = Some(storm_plan(factor, &phases));
            }
            c.retry = policy;
            rows.push(run_point(&c, &phases, kind, name, "-", factor));
        }
    }
    println!("fault intensity x retry policy ({}, slowdown for measure/4):", baseline.server);
    print_and_export("resilience_sweep", &sweep_table(&rows));

    // --- 2. Server-side shedding under the heaviest storm. ---
    let storm_policy = policies(timeout)[2].1; // unbudgeted retries
    let sheds: [(&str, Option<ShedConfig>); 4] = [
        ("none", None),
        (
            "drop-new",
            Some(ShedConfig {
                max_concurrent: 16,
                queue_cap: 32,
                policy: ShedPolicy::DropNew,
                reject_bytes: 0,
            }),
        ),
        (
            "drop-oldest",
            Some(ShedConfig {
                max_concurrent: 16,
                queue_cap: 32,
                policy: ShedPolicy::DropOldest,
                reject_bytes: 0,
            }),
        ),
        (
            "reject-fast",
            Some(ShedConfig {
                max_concurrent: 16,
                queue_cap: 32,
                policy: ShedPolicy::RejectFast,
                reject_bytes: 128,
            }),
        ),
    ];
    let budget_policy = policies(timeout)[3].1; // retries + budget
    let mut shed_rows = Vec::new();
    for (name, shed) in sheds {
        for (pname, policy) in [("retry", storm_policy), ("retry+budget", budget_policy)] {
            let mut c = cfg.clone();
            c.faults = Some(storm_plan(16.0, &phases));
            c.retry = policy;
            c.shed = shed;
            shed_rows.push(run_point(&c, &phases, kind, pname, name, 16.0));
        }
    }
    println!("load shedding x retry budget under the 16x storm:");
    print_and_export("resilience_shed", &sweep_table(&shed_rows));

    // --- 3. Record. ---
    if let Ok(out) = std::env::var("ASYNCINV_RESILIENCE_OUT") {
        #[derive(Serialize)]
        struct Report {
            sweep: Vec<SweepRow>,
            shed: Vec<SweepRow>,
        }
        let report = Report {
            sweep: rows,
            shed: shed_rows,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize resilience report");
        std::fs::write(&out, json + "\n").expect("write resilience json");
        println!("wrote {out}");
    }
}
