//! Self-benchmark of the simulation kernel: raw queue throughput per
//! backend, full experiment-cell wall-clock per backend, and the parallel
//! cell runner's speedup over a serial run.
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin kernel_bench             # full
//! cargo run --release -p asyncinv-bench --bin kernel_bench -- --quick  # smoke
//! ```
//!
//! Results are printed as tables and written to `BENCH_kernel.json`
//! (override the path with `ASYNCINV_BENCH_OUT`). The committed copy at the
//! repository root is the recorded baseline referenced by `EXPERIMENTS.md`.

// detlint::allow-file(wall-clock, reason = "self-benchmark of the kernel: wall-clock timing of the host is the measurement itself, never an input to simulated time")
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use asyncinv::figures::Fidelity;
use asyncinv::fleet::{BalancerKind, Cluster, FleetConfig, ParallelCluster};
use asyncinv::obs::SpanAssembler;
use asyncinv::runner::{configured_threads, run_cells};
use asyncinv::{
    fmt_f64, BackendKind, Experiment, ExperimentConfig, ServerKind, SimDuration, SimTime, Table,
};
use asyncinv_simcore::{AdaptiveQueue, CalendarQueue, EventQueue, LadderQueue, QueueBackend};
use serde::Serialize;

/// One hold-model measurement: pop-one/push-one over a standing population.
#[derive(Debug, Serialize)]
struct HoldRow {
    backend: String,
    population: u64,
    /// Queue operations per wall-clock second (each hold = 1 pop + 1 push
    /// + 1 peek, the engine drive loop's per-event pattern).
    events_per_sec: f64,
}

/// Wall-clock for a fixed Quick cell grid driven end to end on one backend.
#[derive(Debug, Serialize)]
struct GridRow {
    backend: String,
    cells: usize,
    wall_ms: f64,
}

/// Serial vs parallel wall-clock for the same grid through the runner,
/// at one worker-thread count.
#[derive(Debug, Serialize)]
struct RunnerRow {
    cells: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// Interleaved vs parallel-in-time fleet drive of one cluster config.
#[derive(Debug, Serialize)]
struct ParallelFleetRow {
    shards: usize,
    threads: usize,
    interleaved_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// The conservative-sync fleet driver measured against the interleaved
/// driver. Speedup is bounded by `min(shards, threads, host_cores)`:
/// on a single-core host the parallel driver can only break even, so
/// `host_cores` is recorded to make the committed baseline interpretable.
#[derive(Debug, Serialize)]
struct ParallelFleetBench {
    host_cores: usize,
    rows: Vec<ParallelFleetRow>,
}

/// Wall-clock of the untraced (size, concurrency) grid on the proactor
/// versus the reactor it shadows (NettyLike): the SQ/CQ ring emulation —
/// staging, flush batching, reap loops — must not make the eighth
/// architecture disproportionately expensive to simulate. The committed
/// baseline gates the ratio at <= 1.5x.
#[derive(Debug, Serialize)]
struct ProactorRow {
    cells: usize,
    netty_ms: f64,
    proactor_ms: f64,
    ratio: f64,
}

/// Wall-clock cost of observability: the same grid untraced (NoopObserver,
/// the default) and with full tracing into a `Recorder`.
#[derive(Debug, Serialize)]
struct ObsRow {
    cells: usize,
    untraced_ms: f64,
    traced_ms: f64,
    overhead_pct: f64,
}

/// Observability cost on the *fleet* driver: the stressed 3-shard span
/// cell (retries, hedges, a shard brownout, shedding — the workload
/// `latency_breakdown` and `span_audit` run) untraced, fully traced, and
/// with span-tree assembly ([`SpanAssembler::assemble`]) folded over the
/// resulting trace. The single-cell `observability` row understated the
/// cost story — the fleet driver routes every event through the
/// coordinator's replay step, so it is the honest place to measure
/// tracing. Span assembly carries an aspirational <= 3% budget over the
/// traced run; the committed baseline measures ~12% steady-state (best
/// of three folds). A bare iterate-and-classify pass over the same ring
/// — the floor any faithful per-event fold must pay — is already
/// ~2.5–3%, so the miss is reported rather than papered over with a
/// looser gate.
#[derive(Debug, Serialize)]
struct FleetObsRow {
    shards: usize,
    untraced_ms: f64,
    traced_ms: f64,
    trace_overhead_pct: f64,
    span_assembly_ms: f64,
    span_overhead_pct: f64,
}

/// Wall-clock cost of the fault plane when it is configured but empty: the
/// same grid with `faults: None` and with an empty `FaultPlan` (compiles
/// to zero operations). The summaries must be bit-identical; the recorded
/// overhead is gated at <= 1% in the committed baseline.
#[derive(Debug, Serialize)]
struct FaultRow {
    cells: usize,
    no_plan_ms: f64,
    empty_plan_ms: f64,
    overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct KernelBench {
    hold: Vec<HoldRow>,
    grid: Vec<GridRow>,
    proactor: ProactorRow,
    runner: Vec<RunnerRow>,
    parallel_fleet: ParallelFleetBench,
    observability: ObsRow,
    fleet_observability: FleetObsRow,
    fault_plane: FaultRow,
}

/// The steady state of a discrete-event simulation: each iteration peeks
/// the clock, pops the earliest event, and schedules a successor slightly
/// in the future, keeping the population constant.
fn hold_events_per_sec<Q: QueueBackend<u64>>(population: u64, holds: u64) -> f64 {
    let mut q = Q::default();
    for i in 0..population {
        q.push(SimTime::from_nanos(i.wrapping_mul(997)), i);
    }
    // Warm the structure (lets the calendar settle on a bucket width and
    // the adaptive queue migrate before the timer starts).
    for _ in 0..population * 4 {
        hold_once(&mut q);
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..holds {
        acc = acc.wrapping_add(hold_once(&mut q));
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    // 3 queue operations per hold: peek + pop + push.
    holds as f64 * 3.0 / secs
}

fn hold_once<Q: QueueBackend<u64>>(q: &mut Q) -> u64 {
    let head = q.peek_time().expect("population is constant");
    let (t, v) = q.pop().expect("population is constant");
    debug_assert_eq!(head, t);
    q.push(SimTime::from_nanos(t.as_nanos() + 1 + v % 2048), v);
    v
}

/// The fixed grid timed per backend and through the runner: heterogeneous
/// server models, sizes and concurrencies, Quick windows.
fn grid() -> Vec<(ServerKind, usize, usize)> {
    let mut cells = Vec::new();
    for &size in &[100usize, 10 * 1024, 100 * 1024] {
        for &conc in &[1usize, 16, 100] {
            for kind in [
                ServerKind::SyncThread,
                ServerKind::AsyncPool,
                ServerKind::SingleThread,
                ServerKind::NettyLike,
            ] {
                cells.push((kind, size, conc));
            }
        }
    }
    cells
}

fn time_grid_on(backend: BackendKind, cells: &[(ServerKind, usize, usize)]) -> f64 {
    let start = Instant::now();
    for &(kind, size, conc) in cells {
        let mut cfg = Fidelity::Quick.micro(conc, size);
        cfg.backend = backend;
        std::hint::black_box(Experiment::new(cfg).run(kind));
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    asyncinv_bench::banner(
        "kernel_bench — simulation-kernel self-benchmark",
        "O(1)-peek calendar + adaptive backend >= heap on hold-dominated loads; \
         parallel runner cuts grid wall-clock",
    );
    let quick = std::env::args().any(|a| a == "--quick");
    let holds: u64 = if quick { 200_000 } else { 2_000_000 };

    // --- 1. Hold model: the kernel's steady-state op rate per backend. ---
    let mut hold = Vec::new();
    let mut hold_table = Table::new(vec![
        "backend".into(),
        "population".into(),
        "Mops/s".into(),
    ]);
    hold_table.numeric();
    for &population in &[10u64, 100, 10_000, 100_000] {
        for backend in BackendKind::ALL {
            let rate = match backend {
                BackendKind::Heap => hold_events_per_sec::<EventQueue<u64>>(population, holds),
                BackendKind::Calendar => {
                    hold_events_per_sec::<CalendarQueue<u64>>(population, holds)
                }
                BackendKind::Adaptive => {
                    hold_events_per_sec::<AdaptiveQueue<u64>>(population, holds)
                }
                BackendKind::Ladder => {
                    hold_events_per_sec::<LadderQueue<u64>>(population, holds)
                }
            };
            hold_table.row(vec![
                backend.name().into(),
                population.to_string(),
                fmt_f64(rate / 1e6, 2),
            ]);
            hold.push(HoldRow {
                backend: backend.name().into(),
                population,
                events_per_sec: rate,
            });
        }
    }
    println!("\nhold model (pop-one/push-one, constant population):\n{hold_table}");

    // --- 2. Full experiment cells end to end, per backend. ---
    let cells = grid();
    let mut grid_rows = Vec::new();
    let mut grid_table = Table::new(vec!["backend".into(), "cells".into(), "wall[ms]".into()]);
    grid_table.numeric();
    for backend in BackendKind::ALL {
        let wall_ms = time_grid_on(backend, &cells);
        grid_table.row(vec![
            backend.name().into(),
            cells.len().to_string(),
            fmt_f64(wall_ms, 0),
        ]);
        grid_rows.push(GridRow {
            backend: backend.name().into(),
            cells: cells.len(),
            wall_ms,
        });
    }
    println!("\nfixed Quick cell grid, serial, per backend:\n{grid_table}");

    // --- 2b. Proactor row: the untraced grid combos on the ring vs Netty. ---
    let combos: Vec<(usize, usize)> = {
        let mut seen = Vec::new();
        for &(_, size, conc) in &cells {
            if !seen.contains(&(size, conc)) {
                seen.push((size, conc));
            }
        }
        seen
    };
    let time_kind = |kind: ServerKind| {
        let start = Instant::now();
        for &(size, conc) in &combos {
            std::hint::black_box(Experiment::new(Fidelity::Quick.micro(conc, size)).run(kind));
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    let netty_ms = time_kind(ServerKind::NettyLike);
    let proactor_ms = time_kind(ServerKind::Proactor);
    let proactor = ProactorRow {
        cells: combos.len(),
        netty_ms,
        proactor_ms,
        ratio: proactor_ms / netty_ms.max(1e-9),
    };
    println!(
        "\nproactor: {} cells untraced  netty {:.0} ms  proactor {:.0} ms  ratio {:.2}",
        proactor.cells, netty_ms, proactor_ms, proactor.ratio
    );
    if proactor.ratio > 1.5 {
        eprintln!(
            "warning: proactor grid ratio {:.2} exceeds the 1.5x budget",
            proactor.ratio
        );
    }

    // --- 3. Parallel runner speedup on the same grid, per thread count. ---
    let host_cores = configured_threads();
    let start = Instant::now();
    let serial = run_cells(Fidelity::Quick, &cells, 1);
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut runner = Vec::new();
    let mut runner_table = Table::new(vec![
        "threads".into(),
        "serial[ms]".into(),
        "parallel[ms]".into(),
        "speedup".into(),
    ]);
    runner_table.numeric();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let parallel = run_cells(Fidelity::Quick, &cells, threads);
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(serial, parallel, "parallel run must be bit-identical");
        let speedup = serial_ms / parallel_ms.max(1e-9);
        runner_table.row(vec![
            threads.to_string(),
            fmt_f64(serial_ms, 0),
            fmt_f64(parallel_ms, 0),
            fmt_f64(speedup, 2),
        ]);
        runner.push(RunnerRow {
            cells: cells.len(),
            threads,
            serial_ms,
            parallel_ms,
            speedup,
        });
    }
    println!(
        "\nrunner: {} cells, host reports {host_cores} core(s):\n{runner_table}",
        cells.len()
    );

    // --- 3b. Parallel-in-time fleet driver vs the interleaved driver. ---
    let fleet_cell = || {
        let mut cfg = ExperimentConfig::micro(16, 10 * 1024);
        cfg.warmup = SimDuration::from_millis(100);
        cfg.measure = SimDuration::from_millis(if quick { 200 } else { 600 });
        cfg
    };
    let mut fleet_rows = Vec::new();
    let mut fleet_table = Table::new(vec![
        "shards".into(),
        "threads".into(),
        "interleaved[ms]".into(),
        "parallel[ms]".into(),
        "speedup".into(),
    ]);
    fleet_table.numeric();
    for shards in [2usize, 4, 8] {
        let cfg = FleetConfig::new(fleet_cell(), shards, BalancerKind::RoundRobin);
        let start = Instant::now();
        let a = Cluster::new(cfg.clone()).run(ServerKind::NettyLike);
        let interleaved_ms = start.elapsed().as_secs_f64() * 1e3;
        let threads = 4usize;
        let start = Instant::now();
        let b = ParallelCluster::new(cfg).threads(threads).run(ServerKind::NettyLike);
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(a, b, "parallel fleet drive must be bit-identical");
        let speedup = interleaved_ms / parallel_ms.max(1e-9);
        fleet_table.row(vec![
            shards.to_string(),
            threads.to_string(),
            fmt_f64(interleaved_ms, 0),
            fmt_f64(parallel_ms, 0),
            fmt_f64(speedup, 2),
        ]);
        fleet_rows.push(ParallelFleetRow {
            shards,
            threads,
            interleaved_ms,
            parallel_ms,
            speedup,
        });
    }
    let parallel_fleet = ParallelFleetBench { host_cores, rows: fleet_rows };
    println!(
        "\nparallel fleet (conservative sync, bit-identical, host reports {host_cores} \
         core(s); speedup bound = min(shards, threads, cores)):\n{fleet_table}"
    );

    // --- 4. Observability overhead: untraced vs fully traced grid. ---
    let start = Instant::now();
    for &(kind, size, conc) in &cells {
        std::hint::black_box(Experiment::new(Fidelity::Quick.micro(conc, size)).run(kind));
    }
    let untraced_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    for &(kind, size, conc) in &cells {
        let mut cfg = Fidelity::Quick.micro(conc, size);
        cfg.trace_capacity = 1 << 14;
        std::hint::black_box(Experiment::new(cfg).run_traced(kind));
    }
    let traced_ms = start.elapsed().as_secs_f64() * 1e3;
    let observability = ObsRow {
        cells: cells.len(),
        untraced_ms,
        traced_ms,
        overhead_pct: (traced_ms / untraced_ms.max(1e-9) - 1.0) * 100.0,
    };
    println!(
        "\nobservability: {} cells  untraced {:.0} ms  traced {:.0} ms  overhead {:.1}%",
        observability.cells, untraced_ms, traced_ms, observability.overhead_pct
    );

    // --- 4b. Fleet-driver observability: untraced vs traced vs spans. ---
    // Measured on the same stressed 3-shard cell `latency_breakdown` and
    // `span_audit` run (retries, hedges, a shard fault, shedding), so the
    // overhead numbers describe the workload span assembly exists for.
    let fleet_obs_cfg =
        || asyncinv_bench::stressed_span_fleet(BalancerKind::PowerOfTwoChoices { seed: 0x5eed }, quick);
    let start = Instant::now();
    std::hint::black_box(Cluster::new(fleet_obs_cfg()).run(ServerKind::NettyLike));
    let fleet_untraced_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let (_, rec) = Cluster::new(fleet_obs_cfg()).run_traced(ServerKind::NettyLike);
    let fleet_traced_ms = start.elapsed().as_secs_f64() * 1e3;
    // Steady state (best of three): the first fold pays allocator and
    // page-fault warmup that repeated assembly over a live recorder does
    // not — the same convention as the hold-model rows.
    let mut span_assembly_ms = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(SpanAssembler::assemble(&rec));
        span_assembly_ms = span_assembly_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let fleet_observability = FleetObsRow {
        shards: 3,
        untraced_ms: fleet_untraced_ms,
        traced_ms: fleet_traced_ms,
        trace_overhead_pct: (fleet_traced_ms / fleet_untraced_ms.max(1e-9) - 1.0) * 100.0,
        span_assembly_ms,
        span_overhead_pct: span_assembly_ms / fleet_traced_ms.max(1e-9) * 100.0,
    };
    println!(
        "\nfleet observability: 3 shards (stressed span cell)  untraced {:.0} ms  traced {:.0} ms \
         (overhead {:.1}%)  span assembly {:.1} ms (+{:.1}% over traced)",
        fleet_untraced_ms,
        fleet_traced_ms,
        fleet_observability.trace_overhead_pct,
        span_assembly_ms,
        fleet_observability.span_overhead_pct
    );
    if fleet_observability.span_overhead_pct > 3.0 {
        eprintln!(
            "warning: span assembly overhead {:.1}% exceeds the 3% budget",
            fleet_observability.span_overhead_pct
        );
    }

    // --- 5. Fault-plane overhead: faults None vs an empty FaultPlan. ---
    let start = Instant::now();
    let plain: Vec<_> = cells
        .iter()
        .map(|&(kind, size, conc)| Experiment::new(Fidelity::Quick.micro(conc, size)).run(kind))
        .collect();
    let no_plan_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let empty: Vec<_> = cells
        .iter()
        .map(|&(kind, size, conc)| {
            let mut cfg = Fidelity::Quick.micro(conc, size);
            cfg.faults = Some(asyncinv::fault::FaultPlan::default());
            Experiment::new(cfg).run(kind)
        })
        .collect();
    let empty_plan_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(plain, empty, "empty fault plan must be bit-identical");
    let fault_plane = FaultRow {
        cells: cells.len(),
        no_plan_ms,
        empty_plan_ms,
        overhead_pct: (empty_plan_ms / no_plan_ms.max(1e-9) - 1.0) * 100.0,
    };
    println!(
        "\nfault plane: {} cells  no plan {:.0} ms  empty plan {:.0} ms  overhead {:.1}% \
         (summaries bit-identical)",
        fault_plane.cells, no_plan_ms, empty_plan_ms, fault_plane.overhead_pct
    );
    if fault_plane.overhead_pct > 1.0 {
        eprintln!(
            "warning: empty fault plan overhead {:.1}% exceeds the 1% budget",
            fault_plane.overhead_pct
        );
    }

    // --- 6. Record. ---
    let out = std::env::var("ASYNCINV_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernel.json".into());
    let report = KernelBench {
        hold,
        grid: grid_rows,
        proactor,
        runner,
        parallel_fleet,
        observability,
        fleet_observability,
        fault_plane,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize kernel bench");
    std::fs::write(&out, json + "\n").expect("write kernel bench json");
    println!("\nwrote {out}");
}
