//! **Ablation** — Netty's `writeSpinCount` threshold (default 16).
//!
//! Sweeps the bound from 1 to effectively-unbounded on the Fig 9 workloads.
//! Small bounds park too eagerly (extra writable round trips); huge bounds
//! degenerate to SingleT-Async's unbounded spin.

use asyncinv::{Experiment, ExperimentConfig, ServerKind, SimDuration};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: writeSpin threshold",
        "the paper adopts Netty 4's default of 16; this sweep shows the \
         tradeoff both ways",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &lat in &[0u64, 5000] {
        for &limit in &[1u32, 4, 16, 64, 4096] {
            let mut cfg = ExperimentConfig::micro(100, 100 * 1024);
            cfg.warmup = warmup;
            cfg.measure = measure;
            cfg.write_spin_limit = limit;
            cfg.tcp.added_latency = SimDuration::from_micros(lat);
            let mut s = Experiment::new(cfg).run(ServerKind::NettyLike);
            s.server = format!("Netty/spin={limit}");
            rows.push(s);
        }
    }
    asyncinv_bench::print_and_export("ablation_write_spin_limit", &throughput_table(&rows));
}
