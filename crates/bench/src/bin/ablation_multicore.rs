//! **Ablation** — multi-core scaling (the paper's N-copy remark).
//!
//! Single-threaded event loops need one copy per core (Section II-A);
//! Netty-style servers scale by adding event-loop workers. This sweep runs
//! 1/2/4 cores with matching worker counts against the thread-based
//! server, which scales transparently.

use asyncinv::substrate::SchedPolicy;
use asyncinv::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: multi-core scaling",
        "N event-loop workers ~ N-copy; the thread pool scales transparently",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &cores in &[1usize, 2, 4] {
        for kind in [ServerKind::SyncThread, ServerKind::NettyLike] {
            let mut cfg = ExperimentConfig::micro(200, 100);
            cfg.warmup = warmup;
            cfg.measure = measure;
            cfg.cpu.cores = cores;
            cfg.netty_workers = cores;
            let mut s = Experiment::new(cfg).run(kind);
            s.server = format!("{}/{}core", s.server, cores);
            rows.push(s);
        }
    }
    asyncinv_bench::print_and_export("ablation_multicore", &throughput_table(&rows));

    // Scheduling policy matters under *imbalanced* per-connection work:
    // heavy and light requests mix, so strict affinity strands heavy work
    // on some cores while others idle; stealing rebalances at a migration
    // cost. (With uniform traffic all three policies coincide.)
    println!("scheduling policy on 4 cores (sTomcat-Sync, conc 16, 10% heavy):");
    let mut rows = Vec::new();
    for (label, policy) in [
        ("global-queue", SchedPolicy::GlobalQueue),
        ("per-core", SchedPolicy::PerCore { steal: false }),
        ("per-core+steal", SchedPolicy::PerCore { steal: true }),
    ] {
        let mut cfg = ExperimentConfig::with_mix(
            16,
            asyncinv::workload::Mix::heavy_light(0.1),
        );
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.cpu.cores = 4;
        cfg.cpu.policy = policy;
        let mut s = Experiment::new(cfg).run(ServerKind::SyncThread);
        s.server = format!("{}/{label}", s.server);
        rows.push(s);
    }
    asyncinv_bench::print_and_export("ablation_multicore_policy", &throughput_table(&rows));
}
