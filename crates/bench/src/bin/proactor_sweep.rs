//! **Proactor sweep** — the Table I–IV counter columns for all eight
//! architectures, plus the syscall-crossings-vs-response-size figure that
//! motivates the completion-based design.
//!
//! The paper's counters (context switches per request, `socket.write()`
//! calls per request, write-spin zero-returns, the user/system CPU split)
//! are all symptoms of one cost: kernel crossings per request. The
//! proactor moves that dial directly — SQEs are staged in user space and
//! flushed in batches, so one `io_uring_enter` crossing carries many
//! operations — and this sweep shows where that wins: small responses,
//! where Netty's per-op syscalls dominate, and never at the price of
//! write-spin (the proactor issues no `socket.write()` at all; writes
//! complete via CQEs).
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin proactor_sweep            # full
//! cargo run --release -p asyncinv-bench --bin proactor_sweep -- --quick
//! cargo run --release -p asyncinv-bench --bin proactor_sweep -- --write-scenario
//! cargo run --release -p asyncinv-bench --bin proactor_sweep -- --quick \
//!     --scenario scenarios/proactor_sweep.json                # smoke audit
//! ```
//!
//! The committed copy of the full run lives at `results/proactor_sweep.txt`.
//! `--scenario` loads the checked-in sweep spec, asserts it has not
//! drifted from the source of truth in this file, and replays its cells
//! fully traced through the trace auditor (exit 1 on any audit failure) —
//! the smoke-test entry point.

use asyncinv::figures::Fidelity;
use asyncinv::obs::audit;
use asyncinv::{fmt_f64, Chart, Experiment, HybridPath, RunSummary, ServerKind, Table};
use asyncinv_bench::{banner, fidelity_from_args, print_and_export};
use serde::{Deserialize, Serialize};

const SCENARIO: &str = "scenarios/proactor_sweep.json";

/// The checked-in sweep scenario, reproducibly: `--write-scenario`
/// serializes this, `--scenario` asserts the JSON still matches it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SweepScenario {
    /// Closed-loop users per cell.
    concurrency: usize,
    /// Response sizes replayed under the trace audit, bytes.
    sizes: Vec<usize>,
    /// Architectures audited per size: the proactor itself and the hybrid
    /// routing its heavy path onto the proactor.
    kinds: Vec<ServerKind>,
}

fn scenario() -> SweepScenario {
    SweepScenario {
        concurrency: 100,
        sizes: vec![100, 10 * 1024, 100 * 1024],
        kinds: vec![ServerKind::Proactor, ServerKind::Hybrid],
    }
}

/// Sweep one (size, kind) cell at the given fidelity.
fn cell(fid: Fidelity, conc: usize, size: usize, kind: ServerKind) -> RunSummary {
    let mut cfg = fid.micro(conc, size);
    if kind == ServerKind::Hybrid {
        // The variant this sweep is about: heavy requests routed onto the
        // proactor ring instead of the Netty path.
        cfg.hybrid_heavy = HybridPath::Proactor;
    }
    Experiment::new(cfg).run(kind)
}

fn run_scenario(path: &str, quick: bool) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: could not read {path} (regenerate with --write-scenario): {e}");
        std::process::exit(2);
    });
    let spec: SweepScenario = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid sweep scenario: {e}");
        std::process::exit(2);
    });
    assert_eq!(spec, scenario(), "checked-in scenario drifted from source");
    banner(
        "proactor_sweep — scenario run",
        "ring traffic (SqSubmit/SqFlush/CqReap) reconciles bitwise with the trace",
    );
    println!(
        "scenario {path}: {} sizes x {:?} at concurrency {}",
        spec.sizes.len(),
        spec.kinds,
        spec.concurrency
    );
    let fid = if quick { Fidelity::Quick } else { Fidelity::Full };
    let mut failures = 0;
    let mut t = Table::new(vec![
        "server".into(),
        "size".into(),
        "tps".into(),
        "sq submits".into(),
        "sq flushes".into(),
        "cq reaps".into(),
        "audit".into(),
    ]);
    t.numeric();
    for &size in &spec.sizes {
        for &kind in &spec.kinds {
            let mut cfg = fid.micro(spec.concurrency, size);
            cfg.trace_capacity = 1 << 14;
            if kind == ServerKind::Hybrid {
                cfg.hybrid_heavy = HybridPath::Proactor;
            }
            let (summary, rec) = Experiment::new(cfg).run_traced(kind);
            let report = audit(&summary, &rec);
            if !report.pass() {
                failures += 1;
                eprintln!("{} @ {size}B scenario audit failure:\n{report}", summary.server);
            }
            t.row(vec![
                summary.server.clone(),
                format!("{size}B"),
                fmt_f64(summary.throughput, 1),
                summary.sq_submits.to_string(),
                summary.sq_flushes.to_string(),
                summary.cq_reaps.to_string(),
                if report.pass() { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }
    print_and_export("proactor_sweep_scenario", &t);
    if failures > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--write-scenario" {
            let json = serde_json::to_string_pretty(&scenario()).expect("serialize scenario");
            std::fs::create_dir_all("scenarios").expect("mkdir scenarios");
            std::fs::write(SCENARIO, json + "\n").expect("write scenario");
            println!("wrote {SCENARIO}");
            return;
        }
        if a == "--scenario" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: proactor_sweep --scenario <spec.json>");
                std::process::exit(2);
            });
            let quick = std::env::args().any(|x| x == "--quick");
            run_scenario(&path, quick);
            return;
        }
    }

    banner(
        "proactor sweep: kernel crossings vs response size, eight architectures",
        "batched submission beats per-op syscalls on small responses, \
         with zero write-spin at any size",
    );
    let fid = fidelity_from_args();
    let sizes: &[usize] = match fid {
        Fidelity::Quick => &[100, 10 * 1024, 100 * 1024],
        Fidelity::Full => &[100, 1024, 10 * 1024, 100 * 1024],
    };
    let conc = scenario().concurrency;

    // --- The Table I–IV counter columns, re-measured per architecture. ---
    // cs/req is Tables I/II, writes/req and spin/req are Table IV,
    // usr/busy is Table III's normalization; crossings/req is the uniform
    // metric the proactor moves, and sqe/flush its batching factor.
    let mut t = Table::new(vec![
        "server".into(),
        "size".into(),
        "tps".into(),
        "cs/req".into(),
        "writes/req".into(),
        "spin/req".into(),
        "usr/busy".into(),
        "crossings/req".into(),
        "sqe/flush".into(),
    ]);
    t.numeric();
    // runs[size index] holds the eight summaries in ServerKind::ALL order.
    let mut runs: Vec<Vec<RunSummary>> = Vec::new();
    for &size in sizes {
        let mut row = Vec::new();
        for kind in ServerKind::ALL {
            let s = cell(fid, conc, size, kind);
            let batch = if s.sq_flushes > 0 {
                fmt_f64(s.sq_submits as f64 / s.sq_flushes as f64, 1)
            } else {
                "-".into()
            };
            t.row(vec![
                s.server.clone(),
                format!("{size}B"),
                fmt_f64(s.throughput, 1),
                fmt_f64(s.cs_per_req, 1),
                fmt_f64(s.writes_per_req, 1),
                fmt_f64(s.spins_per_req, 1),
                fmt_f64(s.cpu.user_share_of_busy(), 2),
                fmt_f64(s.crossings_per_req, 2),
                batch,
            ]);
            row.push(s);
        }
        runs.push(row);
    }
    print_and_export("proactor_sweep", &t);

    // --- The crossover figure: crossings/req vs response size. ---
    let series_for = |kind: ServerKind| -> Vec<(f64, f64)> {
        let idx = ServerKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL");
        sizes
            .iter()
            .zip(&runs)
            .map(|(&size, row)| ((size as f64).log10(), row[idx].crossings_per_req))
            .collect()
    };
    let mut chart = Chart::new(
        "kernel crossings per request vs log10(response bytes)",
        64,
        16,
    );
    chart.series("Proactor", series_for(ServerKind::Proactor));
    chart.series("NettyServer", series_for(ServerKind::NettyLike));
    chart.series("SingleT-Async", series_for(ServerKind::SingleThread));
    println!("\n{chart}");

    // --- The claims the figure makes, asserted. ---
    let idx = |kind: ServerKind| ServerKind::ALL.iter().position(|&k| k == kind).unwrap();
    let small = &runs[0];
    let (pro, net) = (&small[idx(ServerKind::Proactor)], &small[idx(ServerKind::NettyLike)]);
    let mut failures = 0;
    if pro.crossings_per_req >= net.crossings_per_req || pro.crossings_per_req <= 0.0 {
        failures += 1;
        eprintln!(
            "FAIL: at {}B the proactor must cross the kernel less than Netty \
             but more than never ({:.2} vs {:.2} crossings/req)",
            sizes[0], pro.crossings_per_req, net.crossings_per_req
        );
    }
    for (row, &size) in runs.iter().zip(sizes) {
        let p = &row[idx(ServerKind::Proactor)];
        if p.writes_per_req != 0.0 || p.spins_per_req != 0.0 {
            failures += 1;
            eprintln!(
                "FAIL: proactor issued socket.write() at {size}B \
                 ({} writes/req, {} spins/req) — writes must complete via CQEs",
                p.writes_per_req, p.spins_per_req
            );
        }
        if p.sq_flushes == 0 || p.sq_submits < p.completions {
            failures += 1;
            eprintln!("FAIL: proactor ring idle at {size}B: {p:?}");
        }
    }
    // Batching factor: at 100-user concurrency each flush must carry more
    // than one SQE on average, or the ring is just a slow syscall.
    let p = &runs[0][idx(ServerKind::Proactor)];
    let batch = p.sq_submits as f64 / p.sq_flushes.max(1) as f64;
    if batch <= 1.0 {
        failures += 1;
        eprintln!("FAIL: submission batching factor {batch:.2} <= 1 at {}B", sizes[0]);
    }
    println!(
        "\nheadline: {}B  proactor {:.2} vs netty {:.2} crossings/req \
         (batch {batch:.1} SQE/flush, 0 write-spin at every size)",
        sizes[0], pro.crossings_per_req, net.crossings_per_req
    );
    asyncinv_bench::export_observability_micro(
        "proactor_sweep",
        conc,
        100,
        ServerKind::Proactor,
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
