//! **span_audit** — proves span-tree conservation across the whole fleet.
//!
//! For every server architecture × load balancer, runs a 3-shard fleet
//! with the full stress plane lit (client retries, hedged requests, a
//! mid-run shard slowdown and a shard shed override), folds the trace
//! into causal span trees with [`SpanAssembler`], and audits the forest:
//! exactly one tree per completed request, per-tree phase durations
//! summing to the recorded response time **bitwise**, hedge losers
//! attributed to cancellation, and every retry/hedge/cancel event
//! reconciled against the recorder's exact per-kind totals. The same
//! configuration is then re-run on the parallel fleet driver and the two
//! span forests compared for identity, tree for tree.
//!
//! `--validate-spans <file>` instead schema-checks an exported span
//! Chrome-trace JSON file (as written by `latency_breakdown`) and reports
//! its event count.

use asyncinv::fleet::{BalancerKind, Cluster, ParallelCluster};
use asyncinv::obs::{span_audit, validate_span_trace, SpanAssembler};
use asyncinv::{ServerKind, Table};
use asyncinv_bench::{banner, fidelity_from_args, stressed_span_fleet};

fn main() {
    // --validate-spans mode: schema-check an exported span trace file.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--validate-spans" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: span_audit --validate-spans <span-trace.json>");
                std::process::exit(2);
            });
            let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: could not read {path}: {e}");
                std::process::exit(2);
            });
            match validate_span_trace(&body) {
                Ok(n) => {
                    println!("{path}: valid span Chrome trace, {n} events");
                    return;
                }
                Err(e) => {
                    eprintln!("{path}: INVALID span trace: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    banner(
        "span audit: causal span trees conserve response time bitwise",
        "every completed request folds into exactly one span tree whose phase \
         durations sum to its recorded response time, across retries, hedges, \
         faults and shedding, on both fleet drivers",
    );
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);

    let mut t = Table::new(vec![
        "server".into(),
        "balancer".into(),
        "trees".into(),
        "completed".into(),
        "abandoned".into(),
        "attempts".into(),
        "audit".into(),
        "par==seq".into(),
    ]);
    t.numeric();
    let mut failures = 0usize;
    for kind in ServerKind::ALL {
        for balancer in BalancerKind::ALL {
            let cfg = stressed_span_fleet(balancer, quick);
            let (summary, rec) = Cluster::new(cfg.clone()).run_traced(kind);
            let forest = SpanAssembler::assemble(&rec);
            let label = format!("{}/{}", summary.fleet.server, balancer.name());
            let report = span_audit(&label, &rec, &forest);
            let ok = report.pass();
            if !ok {
                failures += 1;
                eprintln!("{label} span audit failure:\n{report}");
            }
            let (_, rec_p) = ParallelCluster::new(cfg).run_traced(kind);
            let forest_p = SpanAssembler::assemble(&rec_p);
            let identical = forest == forest_p;
            if !identical {
                failures += 1;
                eprintln!("{label}: parallel-driver span forest diverged");
            }
            let attempts: usize = forest.trees.iter().map(|tr| tr.attempts.len()).sum();
            t.row(vec![
                summary.fleet.server.clone(),
                balancer.name().into(),
                forest.trees.len().to_string(),
                forest.completed().count().to_string(),
                forest.abandoned().count().to_string(),
                attempts.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
                if identical { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }
    asyncinv_bench::print_and_export("span_audit", &t);
    if failures > 0 {
        eprintln!("span audit: {failures} architecture/balancer combinations FAILED");
        std::process::exit(1);
    }
    println!("span audit: all span forests conserve response time bitwise");
}
