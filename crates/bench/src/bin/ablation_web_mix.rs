//! **Ablation** — a realistic web mixture (extension): 200 request classes
//! with bounded-Pareto (heavy-tailed) response sizes and Zipf popularity,
//! the traffic shape the paper cites when arguing the hybrid "makes more
//! sense in dealing with realistic workload" (its Section V-C).
//!
//! Unlike the two-class Fig 11 mix, the hybrid must profile hundreds of
//! classes; most are light (fast path), the Pareto tail is heavy (bounded
//! path), and no single static configuration suits both.

use asyncinv::workload::Mix;
use asyncinv::{Experiment, ExperimentConfig, ServerKind, SimDuration};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: heavy-tailed web mixture (200 Zipf classes, extension)",
        "the hybrid profiles per class and tracks the best pure strategy on \
         realistic traffic",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mix = Mix::web_realistic(200, 1.0, 0.7, 100, 200 * 1024, 2026);
    let mut rows = Vec::new();
    for &lat_ms in &[0u64, 5] {
        for kind in [
            ServerKind::Hybrid,
            ServerKind::NettyLike,
            ServerKind::SingleThread,
            ServerKind::SyncThread,
        ] {
            let mut cfg = ExperimentConfig::with_mix(100, mix.clone())
                .with_latency(SimDuration::from_millis(lat_ms));
            cfg.warmup = warmup;
            cfg.measure = measure;
            rows.push(Experiment::new(cfg).run(kind));
        }
    }
    asyncinv_bench::print_and_export("ablation_web_mix", &throughput_table(&rows));
}
