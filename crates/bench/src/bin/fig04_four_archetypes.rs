//! **Fig 4** — throughput (a–c) and context-switch rate (d–f) of the four
//! simplified architectures across concurrencies and response sizes.
//!
//! Paper: throughput is negatively correlated with context-switch
//! frequency; sTomcat-Async-Fix beats sTomcat-Async by ~22% at concurrency
//! 16 with ~34% fewer switches; SingleT-Async wins on small responses but
//! loses on 100 KB (write-spin).

use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Fig 4: four archetypes, throughput + context switches",
        "maximum throughput anti-correlates with context-switch rate; \
         write-spin flips the ranking at 100 KB",
    );
    let fid = fidelity_from_args();
    let concs: &[usize] = match fid {
        asyncinv::figures::Fidelity::Quick => &[8, 64, 800],
        asyncinv::figures::Fidelity::Full => &asyncinv::figures::CONCURRENCIES,
    };
    let rows = asyncinv::figures::fig04_four_archetypes(fid, concs);
    asyncinv_bench::print_and_export("fig04_four_archetypes", &throughput_table(&rows));
    // With --trace-out/--metrics-out: export one traced sTomcat-Async cell
    // (the architecture whose Fig 3 flow the trace makes visible).
    asyncinv_bench::export_observability_micro(
        "fig04_four_archetypes",
        16,
        100,
        asyncinv::ServerKind::AsyncPool,
    );
}
