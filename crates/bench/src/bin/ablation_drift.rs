//! **Ablation** — runtime re-classification under response-size drift.
//!
//! The paper's map-update rationale: "the response size even for the same
//! type of requests may change over time (due to runtime environment
//! changes such as dataset)". A request class starts light (0.1 KB) and
//! drifts to 100 KB mid-run; the hybrid re-learns its class on the first
//! misprediction, while the unbounded spinner collapses (with latency) and
//! plain Netty pays its overhead throughout.

use asyncinv::workload::RequestClass;
use asyncinv::workload::Mix;
use asyncinv::{Experiment, ExperimentConfig, ServerKind, SimDuration, SimTime};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: classification under response-size drift",
        "the hybrid re-classifies on the first misprediction and keeps the \
         upper envelope",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let drift_at = SimTime::ZERO + warmup + measure / 4;
    let mut rows = Vec::new();
    for kind in [ServerKind::Hybrid, ServerKind::NettyLike, ServerKind::SingleThread] {
        let class = RequestClass::new("drifting-page", 100).with_drift(drift_at, 100 * 1024);
        let mut cfg = ExperimentConfig::with_mix(100, Mix::new(vec![(class, 1.0)]))
            .with_latency(SimDuration::from_millis(2));
        cfg.warmup = warmup;
        cfg.measure = measure;
        let (mut s, counters) = Experiment::new(cfg).run_detailed(kind);
        if kind == ServerKind::Hybrid {
            let reclass = counters
                .iter()
                .find(|(n, _)| *n == "reclass_to_heavy")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            s.server = format!("{} (reclass={reclass})", s.server);
        }
        rows.push(s);
    }
    asyncinv_bench::print_and_export("ablation_drift", &throughput_table(&rows));
    println!("(drift fires at {drift_at}; +2 ms one-way latency)");
}
