//! **Ablation** — fixed TCP send-buffer size vs response size.
//!
//! The paper's "intuitive solution": raising SO_SNDBUF to the response
//! size removes the write-spin. This sweep shows the knee at
//! buffer == response and the diminishing returns beyond.

use asyncinv::substrate::SendBufPolicy;
use asyncinv::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: fixed send-buffer size (SingleT-Async, 100 KB)",
        "the write-spin disappears once the buffer covers the response",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &kb in &[4usize, 8, 16, 32, 64, 100, 128, 256] {
        let mut cfg = ExperimentConfig::micro(100, 100 * 1024);
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.tcp.send_buf = SendBufPolicy::Fixed(kb * 1024);
        let mut s = Experiment::new(cfg).run(ServerKind::SingleThread);
        s.server = format!("SingleT/sndbuf={kb}KB");
        rows.push(s);
    }
    asyncinv_bench::print_and_export("ablation_send_buffer", &throughput_table(&rows));
}
