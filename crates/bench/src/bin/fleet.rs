//! **fleet** — balancer × shard-count × fault-intensity sweep (extension
//! beyond the paper): a cluster of server-under-test shards behind a
//! pluggable balancer, with hedged requests and cross-shard retries.
//!
//! The default sweep runs every balancer policy over several fleet sizes
//! and brownout intensities and reports goodput, tail latency, route
//! spread and the hedge/retry traffic. With `--scenario` it instead runs
//! the checked-in brownout scenario three ways — fault-free baseline,
//! budgeted retries + hedging, unbudgeted retries — to demonstrate the
//! headline result: a retry budget of 0.1 plus hedging *contains* a
//! single-shard brownout (goodput loss < 1/N), while unbudgeted
//! cross-shard retries propagate it fleet-wide.
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin fleet             # full sweep
//! cargo run --release -p asyncinv-bench --bin fleet -- --quick  # smoke
//! cargo run --release -p asyncinv-bench --bin fleet -- \
//!     --scenario scenarios/shard_brownout.json       # containment demo
//! cargo run --release -p asyncinv-bench --bin fleet -- \
//!     --json [out.json]     # machine-readable sweep (default results/fleet-sweep.json)
//! cargo run --release -p asyncinv-bench --bin fleet -- --write-scenario
//! ```
//!
//! All runs are seeded and deterministic. The `--scenario` run first
//! asserts the checked-in JSON has not drifted from the canonical
//! scenario in this file (regenerate with `--write-scenario`), then runs
//! traced and reconciled through [`fleet_audit`]; an audit failure
//! exits 1.

use asyncinv::fault::{FaultEvent, FaultKind, FaultPlan};
use asyncinv::fleet::{
    fleet_audit, BalancerKind, BrownoutSpec, Cluster, FleetConfig, FleetScenario, FleetSummary,
    HedgeConfig, ShardFault,
};
use asyncinv::{fmt_f64, ExperimentConfig, ServerKind, SimDuration, Table};
use asyncinv_bench::{banner, fidelity_from_args, print_and_export};
use serde::Serialize;

/// One sweep point, also exported with `--json`.
#[derive(Debug, Serialize)]
struct SweepRow {
    balancer: String,
    shards: usize,
    slowdown: f64,
    goodput: f64,
    p99_ms: f64,
    route_spread: f64,
    hedges: u64,
    hedge_cancels: u64,
    shard_retries: u64,
    timeouts: u64,
    retries: u64,
}

const SCENARIO: &str = "scenarios/shard_brownout.json";

/// The checked-in brownout scenario, reproducibly: `--write-scenario`
/// serializes this, `--scenario` asserts the JSON still matches it.
fn brownout_scenario() -> FleetScenario {
    FleetScenario {
        name: "shard-brownout".into(),
        shards: 4,
        concurrency: 192,
        response_bytes: 10 * 1024,
        seed: 42,
        think: SimDuration::from_millis(8),
        balancer: BalancerKind::RoundRobin,
        hedge: Some(HedgeConfig {
            percentile: 0.9,
            initial_delay: SimDuration::from_millis(5),
            min_samples: 64,
            per_shard: false,
        }),
        timeout: SimDuration::from_millis(25),
        max_retries: 5,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_secs(1),
        brownout: BrownoutSpec {
            shard: 0,
            at: SimDuration::from_millis(300),
            factor: 50.0,
            duration: SimDuration::from_millis(800),
        },
    }
}

/// max/min per-shard route share — 1.0 is a perfectly even spread.
fn route_spread(summary: &FleetSummary) -> f64 {
    let routes: Vec<u64> = summary.per_shard.iter().map(|s| s.routes).collect();
    let max = routes.iter().copied().max().unwrap_or(0);
    let min = routes.iter().copied().min().unwrap_or(0);
    if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

fn sweep_cell(quick: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::micro(64, 10 * 1024);
    cfg.warmup = SimDuration::from_millis(200);
    cfg.measure = SimDuration::from_millis(if quick { 500 } else { 1500 });
    cfg.retry = asyncinv::workload::RetryPolicy {
        timeout: Some(SimDuration::from_millis(30)),
        max_retries: 3,
        budget_ratio: 0.1,
        ..asyncinv::workload::RetryPolicy::default()
    };
    cfg
}

fn brownout(cfg: &ExperimentConfig, shard: usize, factor: f64) -> ShardFault {
    ShardFault {
        shard,
        plan: FaultPlan {
            seed: 7,
            events: vec![FaultEvent {
                at: cfg.warmup + cfg.measure / 4,
                fault: FaultKind::Slowdown {
                    factor,
                    duration: Some(cfg.measure / 4),
                },
            }],
        },
    }
}

fn run_point(
    cell: &ExperimentConfig,
    balancer: BalancerKind,
    shards: usize,
    factor: f64,
    kind: ServerKind,
) -> SweepRow {
    let mut cfg = FleetConfig::new(cell.clone(), shards, balancer);
    cfg.hedge = Some(asyncinv::fleet::HedgeConfig::default());
    if factor > 1.0 {
        cfg.shard_faults = vec![brownout(cell, 0, factor)];
    }
    let summary = Cluster::new(cfg).run(kind);
    SweepRow {
        balancer: balancer.name().into(),
        shards,
        slowdown: factor,
        goodput: summary.fleet.throughput,
        p99_ms: summary.fleet.p99_rt_us as f64 / 1e3,
        route_spread: route_spread(&summary),
        hedges: summary.fleet.hedges,
        hedge_cancels: summary.fleet.hedge_cancels,
        shard_retries: summary.fleet.shard_retries,
        timeouts: summary.fleet.timeouts,
        retries: summary.fleet.retries,
    }
}

fn sweep_table(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(vec![
        "balancer".into(),
        "shards".into(),
        "slow x".into(),
        "goodput[req/s]".into(),
        "p99[ms]".into(),
        "spread".into(),
        "hedges".into(),
        "cancels".into(),
        "x-shard retries".into(),
        "timeouts".into(),
        "retries".into(),
    ]);
    t.numeric();
    for r in rows {
        t.row(vec![
            r.balancer.clone(),
            r.shards.to_string(),
            fmt_f64(r.slowdown, 0),
            fmt_f64(r.goodput, 1),
            fmt_f64(r.p99_ms, 2),
            if r.route_spread.is_finite() {
                fmt_f64(r.route_spread, 2)
            } else {
                "inf".into()
            },
            r.hedges.to_string(),
            r.hedge_cancels.to_string(),
            r.shard_retries.to_string(),
            r.timeouts.to_string(),
            r.retries.to_string(),
        ]);
    }
    t
}

/// `--scenario <file>`: the brownout-containment demonstration. Runs the
/// checked-in [`FleetScenario`] under three policies on the identical
/// workload and fault schedule, audits the traced budgeted run, and
/// checks the containment claim.
fn run_scenario(path: &str, kind: ServerKind) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: could not read {path}: {e}");
        std::process::exit(2);
    });
    let scenario: FleetScenario = serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid FleetScenario: {e}");
        std::process::exit(2);
    });
    if let Err(e) = scenario.validate() {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    }
    assert_eq!(
        scenario,
        brownout_scenario(),
        "checked-in scenario drifted from source (regenerate with --write-scenario)"
    );
    banner(
        "fleet — shard brownout containment",
        "a retry budget plus hedging contains a single-shard brownout; \
         unbudgeted cross-shard retries propagate it fleet-wide",
    );
    let n = scenario.shards;
    println!(
        "scenario {path}: {} — {} shards behind {}, shard {} browns out {}x for {}\n",
        scenario.name,
        n,
        scenario.balancer.name(),
        scenario.brownout.shard,
        scenario.brownout.factor,
        scenario.brownout.duration,
    );

    // Fault-free reference: the budgeted+hedged config with the fault
    // schedule cleared, so every policy is compared to the same ceiling.
    let mut base_cfg = scenario.fleet_config(0.1, true);
    base_cfg.shard_faults.clear();
    let baseline = Cluster::new(base_cfg).run(kind);

    // The budgeted run is the traced one: reconcile the fleet trace
    // bitwise against the summary and per-shard counters.
    let mut budget_cfg = scenario.fleet_config(0.1, true);
    budget_cfg.cell.trace_capacity = 1 << 15;
    let (budgeted, rec) = Cluster::new(budget_cfg).run_traced(kind);
    let report = fleet_audit(&budgeted, &rec);
    if !report.pass() {
        eprintln!("fleet scenario audit failure:\n{report}");
    }

    // Same budgeted policy, but the hedge-delay estimator keyed by shard:
    // the browned-out shard's completions no longer inflate the healthy
    // shards' p90, so hedges for healthy-shard attempts stay tight.
    let mut keyed_cfg = scenario.fleet_config(0.1, true);
    keyed_cfg.hedge = keyed_cfg.hedge.map(|h| HedgeConfig { per_shard: true, ..h });
    let keyed = Cluster::new(keyed_cfg).run(kind);

    let storm = Cluster::new(scenario.fleet_config(0.0, false)).run(kind);

    let loss =
        |s: &FleetSummary| 1.0 - s.fleet.throughput / baseline.fleet.throughput.max(1e-12);
    let mut t = Table::new(vec![
        "policy".into(),
        "goodput[req/s]".into(),
        "loss".into(),
        "p99[ms]".into(),
        "hedges".into(),
        "x-shard retries".into(),
        "retries".into(),
        "timeouts".into(),
        "audit".into(),
    ]);
    t.numeric();
    for (name, s, audited) in [
        ("baseline (no fault)", &baseline, false),
        ("budget 0.1 + hedge", &budgeted, true),
        ("budget 0.1 + per-shard hedge", &keyed, false),
        ("unbudgeted retries", &storm, false),
    ] {
        t.row(vec![
            name.into(),
            fmt_f64(s.fleet.throughput, 1),
            fmt_f64(loss(s), 3),
            fmt_f64(s.fleet.p99_rt_us as f64 / 1e3, 2),
            s.fleet.hedges.to_string(),
            s.fleet.shard_retries.to_string(),
            s.fleet.retries.to_string(),
            s.fleet.timeouts.to_string(),
            if !audited {
                "-".into()
            } else if report.pass() {
                "ok".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    print_and_export("fleet_scenario", &t);

    let mut st = Table::new(vec![
        "shard".into(),
        "routes".into(),
        "completions".into(),
        "hedges".into(),
        "cancels".into(),
        "x-shard retries".into(),
        "faults".into(),
    ]);
    st.numeric();
    for s in &budgeted.per_shard {
        st.row(vec![
            s.shard.to_string(),
            s.routes.to_string(),
            s.completions.to_string(),
            s.hedges.to_string(),
            s.hedge_cancels.to_string(),
            s.shard_retries.to_string(),
            s.fault_events.to_string(),
        ]);
    }
    println!("per-shard traffic under budget 0.1 + hedge:");
    print_and_export("fleet_scenario_shards", &st);

    let contained = loss(&budgeted) < 1.0 / n as f64;
    let propagated = loss(&storm) > loss(&budgeted);
    println!(
        "containment: budgeted loss {} {} 1/{} = {}  ->  {}",
        fmt_f64(loss(&budgeted), 3),
        if contained { "<" } else { ">=" },
        n,
        fmt_f64(1.0 / n as f64, 3),
        if contained { "CONTAINED" } else { "NOT CONTAINED" },
    );
    println!(
        "propagation: unbudgeted loss {} vs budgeted {}  ->  {}",
        fmt_f64(loss(&storm), 3),
        fmt_f64(loss(&budgeted), 3),
        if propagated { "STORM SPREADS" } else { "no spread" },
    );
    if !report.pass() {
        std::process::exit(1);
    }
}

fn main() {
    let mut json_out = None;
    let mut scenario = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-scenario" => {
                let json =
                    serde_json::to_string_pretty(&brownout_scenario()).expect("serialize scenario");
                std::fs::create_dir_all("scenarios").expect("mkdir scenarios");
                std::fs::write(SCENARIO, json + "\n").expect("write scenario");
                println!("wrote {SCENARIO}");
                return;
            }
            "--scenario" => scenario = args.next(),
            // Bare `--json` targets the committed artifact under results/.
            "--json" => {
                json_out = Some(
                    args.next().unwrap_or_else(|| "results/fleet-sweep.json".into()),
                )
            }
            _ => {}
        }
    }
    let kind = ServerKind::NettyLike;
    if let Some(path) = scenario {
        run_scenario(&path, kind);
        return;
    }

    banner(
        "fleet: balancer x shard-count x fault-intensity (extension)",
        "load-balancing policy decides how much of a single-shard brownout \
         the rest of the fleet absorbs",
    );
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);
    let cell = sweep_cell(quick);
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let factors: &[f64] = if quick { &[1.0, 8.0] } else { &[1.0, 4.0, 16.0] };

    let mut rows = Vec::new();
    for &balancer in &BalancerKind::ALL {
        for &shards in shard_counts {
            for &factor in factors {
                rows.push(run_point(&cell, balancer, shards, factor, kind));
            }
        }
    }
    println!(
        "fleet sweep ({}, concurrency {}, brownout on shard 0 for measure/4):",
        kind.paper_name(),
        cell.clients.concurrency
    );
    print_and_export("fleet_sweep", &sweep_table(&rows));

    if let Some(out) = json_out {
        if let Some(dir) = std::path::Path::new(&out).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("mkdir json output dir");
        }
        let json = serde_json::to_string_pretty(&rows).expect("serialize fleet sweep");
        std::fs::write(&out, json + "\n").expect("write fleet sweep json");
        println!("wrote {out}");
    }
}
