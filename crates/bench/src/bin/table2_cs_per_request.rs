//! **Table II** — context switches per request by architectural design,
//! measured at workload concurrency 1.
//!
//! Paper: sTomcat-Async 4, sTomcat-Async-Fix 2, sTomcat-Sync 0,
//! SingleT-Async 0. The counts must *emerge* from thread handoffs in the
//! scheduler model, not be scripted.

use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Table II: context switches per request by design",
        "4 (reactor dispatches read+write separately) / 2 (merged) / 0 / 0",
    );
    let rows = asyncinv::figures::table2_cs_per_request(fidelity_from_args());
    let mut t = Table::new(vec!["server".into(), "cs/req (measured)".into(), "paper".into()]);
    t.numeric();
    let paper = ["4", "2", "0", "0"];
    for (r, p) in rows.iter().zip(paper) {
        t.row(vec![r.server.clone(), fmt_f64(r.cs_per_req, 3), p.into()]);
    }
    asyncinv_bench::print_and_export("table2_cs_per_request", &t);
    asyncinv_bench::export_observability_micro(
        "table2_cs_per_request",
        1,
        100,
        asyncinv::ServerKind::AsyncPool,
    );
}
