//! **Fig 6** — kernel auto-tuned send buffer vs a fixed 100 KB buffer for
//! SingleT-Async sending 100 KB responses.
//!
//! Paper: auto-tuning sizes the buffer from the transport's
//! bandwidth-delay product, not the application's response size, so the
//! write-spin persists; a fixed response-sized buffer eliminates it. The
//! gap widens with network latency.

use asyncinv::figures::Fidelity;
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Fig 6: send-buffer auto-tuning vs fixed 100 KB",
        "auto-tuning tracks the BDP, not the response: the spin persists \
         and latency widens the gap",
    );
    let fid = fidelity_from_args();
    let lats: &[u64] = match fid {
        Fidelity::Quick => &[0, 5000],
        Fidelity::Full => &[0, 1000, 2000, 5000, 10000],
    };
    let rows = asyncinv::figures::fig06_autotuning(fid, lats);
    asyncinv_bench::print_and_export("fig06_autotuning", &throughput_table(&rows));
    asyncinv_bench::export_observability_micro(
        "fig06_autotuning",
        16,
        100,
        asyncinv::ServerKind::AsyncPoolFix,
    );
}
