//! **Ablation** — HTTP/2 server push: per-request size variance within a
//! class (an extension).
//!
//! The paper argues response sizes are unpredictable partly because
//! "HTTP/2.0 enables a web server to push multiple responses for a single
//! client request". A pushed class is sometimes light, sometimes heavy —
//! the worst case for HybridNetty's per-class map, which can only hold one
//! verdict per class and flaps. The measurement shows how the hybrid
//! degrades gracefully toward the Netty path while the unbounded spinner
//! pays full price for every heavy sample.

use asyncinv::workload::{Mix, RequestClass};
use asyncinv::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: HTTP/2 push (per-request size variance, extension)",
        "one class, unpredictable size: the hybrid's per-class map flaps \
         and it converges to Netty-like behaviour",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &(label, resource_kb, max_extra) in
        &[("no-push", 0usize, 0u32), ("push<=2x32KB", 32, 2), ("push<=8x16KB", 16, 8)]
    {
        let class = if max_extra == 0 {
            RequestClass::new("page", 2 * 1024)
        } else {
            RequestClass::new("page", 2 * 1024).with_push(resource_kb * 1024, max_extra)
        };
        for kind in [ServerKind::Hybrid, ServerKind::NettyLike, ServerKind::SingleThread] {
            let mut cfg = ExperimentConfig::with_mix(100, Mix::new(vec![(class.clone(), 1.0)]));
            cfg.warmup = warmup;
            cfg.measure = measure;
            let (mut s, counters) = Experiment::new(cfg).run_detailed(kind);
            s.server = format!("{}/{label}", s.server);
            if kind == ServerKind::Hybrid {
                let flips: u64 = counters
                    .iter()
                    .filter(|(n, _)| n.starts_with("reclass"))
                    .map(|(_, v)| *v)
                    .sum();
                s.server = format!("{} (flips={flips})", s.server);
            }
            rows.push(s);
        }
    }
    asyncinv_bench::print_and_export("ablation_http2_push", &throughput_table(&rows));
}
