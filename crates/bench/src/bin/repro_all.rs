//! Runs every paper artifact and ablation in sequence — the one-command
//! reproduction of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin repro_all            # full
//! cargo run --release -p asyncinv-bench --bin repro_all -- --quick # smoke
//! ```
//!
//! Set `ASYNCINV_CSV_DIR=dir` to also export every table as CSV, and
//! `--trace-out dir` / `--metrics-out dir` to export one Chrome trace /
//! metrics snapshot per artifact (see `docs/observability.md`).

use std::process::Command;

const ARTIFACTS: [&str; 23] = [
    "trace_audit",
    "table2_cs_per_request",
    "table4_write_spin",
    "table1_context_switches",
    "table3_cpu_split",
    "fig02_sync_vs_async",
    "fig04_four_archetypes",
    "fig06_autotuning",
    "fig07_latency",
    "fig09_netty",
    "fig11_hybrid",
    "fig01_rubbos",
    "ablation_write_spin_limit",
    "ablation_send_buffer",
    "ablation_cs_cost",
    "ablation_hybrid_paths",
    "ablation_multicore",
    "ablation_staged",
    "ablation_drift",
    "ablation_http2_push",
    "ablation_loss",
    "ablation_web_mix",
    "proactor_sweep",
];

fn main() {
    // Export `--threads N` as ASYNCINV_THREADS (and the observability
    // flags as ASYNCINV_TRACE_OUT / ASYNCINV_METRICS_OUT) so every child
    // artifact inherits them even though the flags are also forwarded
    // verbatim.
    asyncinv_bench::apply_threads_arg();
    asyncinv_bench::apply_obs_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut failed = Vec::new();
    for (i, artifact) in ARTIFACTS.iter().enumerate() {
        println!("\n### [{}/{}] {artifact}\n", i + 1, ARTIFACTS.len());
        let status = Command::new(dir.join(artifact))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {artifact}: {e}"));
        if !status.success() {
            failed.push(*artifact);
        }
    }
    if failed.is_empty() {
        println!("\nall {} artifacts reproduced", ARTIFACTS.len());
    } else {
        eprintln!("\nFAILED artifacts: {failed:?}");
        std::process::exit(1);
    }
}
