//! **Ablation** — packet loss (an extension beyond the paper's
//! latency-only network conditions).
//!
//! A lost flight costs a 200 ms retransmission timeout before its ACK
//! returns, so each loss event freezes the send buffer like a huge latency
//! spike. Unbounded spinners burn the whole RTO on `write()` retries;
//! blocking and bounded-spin servers sleep or serve other connections.

use asyncinv::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Ablation: packet loss (extension)",
        "loss behaves like a latency spike per flight: spinners collapse \
         first",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut rows = Vec::new();
    for &loss in &[0.0f64, 0.001, 0.01, 0.05] {
        for kind in [
            ServerKind::SyncThread,
            ServerKind::SingleThread,
            ServerKind::NettyLike,
        ] {
            let mut cfg = ExperimentConfig::micro(100, 100 * 1024);
            cfg.warmup = warmup;
            cfg.measure = measure;
            cfg.tcp.loss = loss;
            let mut s = Experiment::new(cfg).run(kind);
            s.server = format!("{}/loss={:.1}%", s.server, loss * 100.0);
            rows.push(s);
        }
    }
    asyncinv_bench::print_and_export("ablation_loss", &throughput_table(&rows));
}
