//! **Fig 1** — RUBBoS system throughput/response time vs. number of users,
//! before and after the Tomcat upgrade (thread-based sTomcat-Sync = Tomcat 7
//! vs asynchronous reactor+pool = Tomcat 8).
//!
//! Paper: SYS_tomcatV7 saturates at 11000 users, SYS_tomcatV8 at 9000; at
//! workload 11000 the thread-based system wins by 28% in throughput and an
//! order of magnitude in response time (226 ms vs 2820 ms).

use asyncinv::figures::Fidelity;
use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Fig 1: RUBBoS before/after the Tomcat upgrade",
        "upgrading the bottleneck tier to the async architecture degrades \
         saturated throughput and blows up response times",
    );
    let fid = fidelity_from_args();
    let users: &[usize] = match fid {
        Fidelity::Quick => &[1000, 4000, 6000],
        Fidelity::Full => &[1000, 3000, 5000, 7000, 9000, 10000, 11000, 12000, 13000],
    };
    let rows = asyncinv::figures::fig01_rubbos(fid, users);
    let mut t = Table::new(vec![
        "tomcat".into(),
        "users".into(),
        "tput[req/s]".into(),
        "mean RT[ms]".into(),
        "p99 RT[ms]".into(),
        "tomcat CPU%".into(),
        "cs/s".into(),
        "db util%".into(),
    ]);
    t.numeric();
    for r in &rows {
        t.row(vec![
            r.server.clone(),
            r.users.to_string(),
            fmt_f64(r.throughput, 1),
            fmt_f64(r.mean_rt_ms, 1),
            fmt_f64(r.p99_rt_ms, 1),
            fmt_f64(r.tomcat_cpu * 100.0, 1),
            fmt_f64(r.cs_per_sec, 0),
            fmt_f64(r.db_util * 100.0, 1),
        ]);
    }
    asyncinv_bench::print_and_export("fig01_rubbos", &t);

    // Detect each system's saturation knee, the paper's headline framing
    // ("SYS_tomcatV7 saturates at 11000 while SYS_tomcatV8 at 9000").
    for name in ["sTomcat-Sync", "sTomcat-Async"] {
        let sweep: Vec<asyncinv::SweepPoint> = rows
            .iter()
            .filter(|r| r.server == name)
            .map(|r| asyncinv::SweepPoint {
                load: r.users as f64,
                throughput: r.throughput,
                response_time: r.mean_rt_ms,
            })
            .collect();
        match asyncinv::find_knee(&sweep, 0.3, 10.0) {
            Some(i) => println!(
                "{name}: saturates around {} users ({:.0} req/s)",
                sweep[i].load, sweep[i].throughput
            ),
            None => println!("{name}: no saturation within the sweep"),
        }
    }
    asyncinv_bench::export_observability_rubbos("fig01_rubbos", 1000);
}
