//! **Fig 11** — normalized throughput vs. percentage of heavy (100 KB)
//! requests at concurrency 100, without (a) and with (b) added latency.
//!
//! Paper: HybridNetty equals SingleT-Async at 0% heavy and NettyServer at
//! 100%, and beats both in between (+30% over SingleT-Async, +10% over
//! NettyServer at 5% heavy); with latency, SingleT-Async collapses for any
//! non-negligible heavy fraction.

use asyncinv::figures::Fidelity;
use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Fig 11: HybridNetty across heavy-request fractions",
        "the hybrid tracks the best pure strategy at the endpoints and \
         beats both in between",
    );
    let fid = fidelity_from_args();
    let pcts: &[u32] = match fid {
        Fidelity::Quick => &[0, 5, 100],
        Fidelity::Full => &[0, 1, 5, 10, 20, 50, 80, 100],
    };
    for (label, lat, csv) in [
        ("(a) no added latency", 0u64, "fig11_hybrid_a"),
        ("(b) +5 ms latency", 5000, "fig11_hybrid_b"),
    ] {
        println!("--- {label} ---");
        let rows = asyncinv::figures::fig11_hybrid(fid, pcts, lat);
        let mut t = Table::new(vec![
            "heavy%".into(),
            "server".into(),
            "tput[req/s]".into(),
            "normalized (Hybrid=1.0)".into(),
        ]);
        t.numeric();
        for chunk in rows.chunks(3) {
            let hybrid_tput = chunk
                .iter()
                .find(|r| r.server == "HybridNetty")
                .expect("hybrid row")
                .throughput;
            for r in chunk {
                t.row(vec![
                    r.response_size.to_string(),
                    r.server.clone(),
                    fmt_f64(r.throughput, 1),
                    fmt_f64(r.throughput / hybrid_tput, 3),
                ]);
            }
        }
        asyncinv_bench::print_and_export(csv, &t);
    }
    asyncinv_bench::export_observability_micro(
        "fig11_hybrid",
        16,
        100,
        asyncinv::ServerKind::Hybrid,
    );
}
