//! **trace_audit** — cross-checks the structured trace against the engine.
//!
//! For every server architecture, runs the paper's context-switch cell
//! (Table I/II: concurrency 1, 0.1 KB responses) and write-spin cell
//! (Table III/IV: concurrency 4, 100 KB responses) with tracing on, then
//! recomputes cs/req, writes/req and spins/req *from the trace events* and
//! asserts they match the engine's `RunSummary` bit-for-bit. A mismatch
//! means an instrumentation point drifted from the counter it mirrors.
//!
//! `--validate <file>` instead schema-checks an exported Chrome trace JSON
//! file (as written by `--trace-out`) and reports its event count.

use asyncinv::fault::{ConnSelector, FaultEvent, FaultKind, FaultPlan};
use asyncinv::obs::{audit, validate_chrome_trace, TraceKind};
use asyncinv::workload::RetryPolicy;
use asyncinv::{fmt_f64, Experiment, ExperimentConfig, ServerKind, SimDuration, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn cell(concurrency: usize, bytes: usize, quick: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::micro(concurrency, bytes);
    cfg.warmup = SimDuration::from_millis(if quick { 200 } else { 500 });
    cfg.measure = SimDuration::from_secs(if quick { 1 } else { 2 });
    cfg.trace_capacity = 1 << 14;
    cfg
}

/// A cell with the fault plane fully lit: a mid-window loss spike, a
/// global stall, connection resets and forced abandons, plus client
/// timeouts/retries. Exercises every fault-plane counter so the audit
/// proves injected-vs-observed reconciliation, not just all-zeros.
fn faulted_cell(quick: bool) -> ExperimentConfig {
    let mut cfg = cell(16, 10 * 1024, quick);
    let mid = cfg.warmup + cfg.measure / 4;
    let step = cfg.measure / 8;
    cfg.retry = RetryPolicy {
        timeout: Some(SimDuration::from_millis(30)),
        max_retries: 3,
        budget_ratio: 0.5,
        ..RetryPolicy::default()
    };
    cfg.faults = Some(FaultPlan {
        seed: 42,
        events: vec![
            FaultEvent {
                at: mid,
                fault: FaultKind::Loss {
                    selector: ConnSelector::Fraction(0.5),
                    prob: 0.3,
                    duration: Some(step),
                },
            },
            FaultEvent {
                at: mid + step,
                fault: FaultKind::WorkerStall {
                    core: None,
                    duration: SimDuration::from_millis(40),
                },
            },
            FaultEvent {
                at: mid + step * 2,
                fault: FaultKind::ConnReset {
                    selector: ConnSelector::Fraction(0.25),
                },
            },
            FaultEvent {
                at: mid + step * 3,
                fault: FaultKind::Abandon {
                    selector: ConnSelector::All,
                },
            },
        ],
    });
    cfg
}

fn main() {
    // --validate mode: schema-check an exported Chrome trace file.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--validate" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: trace_audit --validate <chrome-trace.json>");
                std::process::exit(2);
            });
            let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: could not read {path}: {e}");
                std::process::exit(2);
            });
            match validate_chrome_trace(&body) {
                Ok(n) => {
                    println!("{path}: valid Chrome trace, {n} events");
                    return;
                }
                Err(e) => {
                    eprintln!("{path}: INVALID Chrome trace: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    banner(
        "trace audit: structured trace vs engine counters",
        "Table I/II context switches and Table III/IV write spins recomputed \
         from trace events match the RunSummary exactly",
    );
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);

    let mut t = Table::new(vec![
        "server".into(),
        "cell".into(),
        "cs/req (trace)".into(),
        "writes/req (trace)".into(),
        "spins/req (trace)".into(),
        "audit".into(),
    ]);
    t.numeric();
    let mut failures = 0usize;
    for (cell_name, cfg) in [
        ("cs @1/0.1KB", cell(1, 100, quick)),
        ("spin @4/100KB", cell(4, 100 * 1024, quick)),
        ("fault @16/10KB", faulted_cell(quick)),
    ] {
        for kind in ServerKind::ALL {
            let (summary, rec) = Experiment::new(cfg.clone()).run_traced(kind);
            let report = audit(&summary, &rec);
            let per_req = |k: TraceKind| {
                let c = rec.completions_in_window();
                if c == 0 {
                    0.0
                } else {
                    rec.window_count(k) as f64 / c as f64
                }
            };
            t.row(vec![
                summary.server.clone(),
                cell_name.into(),
                fmt_f64(per_req(TraceKind::ThreadDispatch), 3),
                fmt_f64(per_req(TraceKind::WriteCall), 3),
                fmt_f64(per_req(TraceKind::WriteSpin), 3),
                if report.pass() { "ok".into() } else { "FAIL".into() },
            ]);
            if !report.pass() {
                failures += 1;
                eprintln!("{} [{cell_name}] audit failure:\n{report}", summary.server);
            }
        }
    }
    asyncinv_bench::print_and_export("trace_audit", &t);
    if failures > 0 {
        eprintln!("trace audit: {failures} architecture/cell combinations FAILED");
        std::process::exit(1);
    }
    println!("trace audit: all architectures consistent with their traces");
}
