//! **Table I** — context switches per request of the full TomcatAsync vs
//! TomcatSync at workload concurrency 8.
//!
//! Paper: 40/16 (0.1 KB), 25/7 (10 KB), 28/2 (100 KB) — the asynchronous
//! server always switches far more than the thread-based one.

use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Table I: context switches per request at concurrency 8",
        "the asynchronous Tomcat context-switches several times more than \
         the synchronous one at identical workload",
    );
    let rows = asyncinv::figures::table1_context_switches(fidelity_from_args());
    let mut t = Table::new(vec![
        "response".into(),
        "server".into(),
        "cs/req".into(),
        "cs/s".into(),
        "tput[req/s]".into(),
    ]);
    t.numeric();
    for r in &rows {
        t.row(vec![
            format!("{}B", r.response_size),
            r.server.clone(),
            fmt_f64(r.cs_per_req, 2),
            fmt_f64(r.cs_per_sec, 0),
            fmt_f64(r.throughput, 1),
        ]);
    }
    asyncinv_bench::print_and_export("table1_context_switches", &t);
    asyncinv_bench::export_observability_micro(
        "table1_context_switches",
        100,
        100,
        asyncinv::ServerKind::AsyncPool,
    );
}
