//! **Ablation** — HybridNetty's runtime classification.
//!
//! Shows the path routing and (mis)classification counters across heavy
//! fractions: the map learns during warm-up and every request takes the
//! path its class earned.

use asyncinv::{fmt_f64, Experiment, ExperimentConfig, ServerKind, Table};
use asyncinv::workload::Mix;
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Ablation: hybrid classification behaviour",
        "requests route by learned class; reclassifications stay rare on a \
         stable workload",
    );
    let fid = fidelity_from_args();
    let (warmup, measure) = fid.micro_windows();
    let mut t = Table::new(vec![
        "heavy%".into(),
        "tput[req/s]".into(),
        "fast-path req".into(),
        "netty-path req".into(),
        "reclass->heavy".into(),
        "reclass->light".into(),
    ]);
    t.numeric();
    for &pct in &[0u32, 5, 20, 50, 100] {
        let mut cfg = ExperimentConfig::with_mix(100, Mix::heavy_light(pct as f64 / 100.0));
        cfg.warmup = warmup;
        cfg.measure = measure;
        let (s, counters) = Experiment::new(cfg).run_detailed(ServerKind::Hybrid);
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        t.row(vec![
            pct.to_string(),
            fmt_f64(s.throughput, 1),
            get("fast_requests").to_string(),
            get("netty_requests").to_string(),
            get("reclass_to_heavy").to_string(),
            get("reclass_to_light").to_string(),
        ]);
    }
    asyncinv_bench::print_and_export("ablation_hybrid_paths", &t);
}
