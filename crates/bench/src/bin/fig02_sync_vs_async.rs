//! **Fig 2** — server throughput, thread-based vs asynchronous Tomcat,
//! as workload concurrency rises from 1 to 3200 for 0.1/10/100 KB
//! responses.
//!
//! Paper: the asynchronous server loses below a crossover concurrency
//! (≈64 at 10 KB; ≈1600 at 100 KB) and wins beyond it.

use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Fig 2: TomcatSync vs TomcatAsync across concurrency",
        "async wins only past a crossover concurrency; the crossover moves \
         up with response size",
    );
    let fid = fidelity_from_args();
    let concs: &[usize] = match fid {
        asyncinv::figures::Fidelity::Quick => &[1, 16, 200, 1600],
        asyncinv::figures::Fidelity::Full => &asyncinv::figures::CONCURRENCIES,
    };
    let rows = asyncinv::figures::fig02_sync_vs_async(fid, concs);
    asyncinv_bench::print_and_export("fig02_sync_vs_async", &throughput_table(&rows));

    // One chart per response size: throughput vs log2(concurrency).
    for &size in &asyncinv::figures::SIZES {
        let mut chart = asyncinv::Chart::new(
            format!("throughput [req/s] vs log2(concurrency) — {size} B responses"),
            64,
            12,
        );
        for name in ["sTomcat-Sync", "sTomcat-Async"] {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.server == name && r.response_size == size)
                .map(|r| ((r.concurrency as f64).log2(), r.throughput))
                .collect();
            chart.series(name, pts);
        }
        println!("{chart}");
    }
    asyncinv_bench::export_observability_micro(
        "fig02_sync_vs_async",
        64,
        100,
        asyncinv::ServerKind::AsyncPool,
    );
}
