//! **Table III** — CPU user/system split at workload concurrency 100.
//!
//! Paper: raising the response size from 0.1 KB to 100 KB raises the
//! user-space CPU share of both servers, but more for the asynchronous one
//! (sTomcat-Sync 55%→80%, SingleT-Async 58%→92%): the write-spin loop
//! burns user-space CPU on top of the kernel copies.

use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Table III: CPU user/system split at concurrency 100",
        "large responses inflate user-space CPU, most for the spinning \
         asynchronous server",
    );
    let rows = asyncinv::figures::table3_cpu_split(fidelity_from_args());
    let mut t = Table::new(vec![
        "response".into(),
        "server".into(),
        "tput[req/s]".into(),
        "user% (of busy)".into(),
        "sys% (of busy)".into(),
        "cpu util%".into(),
    ]);
    t.numeric();
    for r in &rows {
        t.row(vec![
            format!("{}B", r.response_size),
            r.server.clone(),
            fmt_f64(r.throughput, 1),
            fmt_f64(r.cpu.user_share_of_busy() * 100.0, 1),
            fmt_f64((1.0 - r.cpu.user_share_of_busy()) * 100.0, 1),
            fmt_f64(r.cpu.utilization() * 100.0, 1),
        ]);
    }
    asyncinv_bench::print_and_export("table3_cpu_split", &t);
    asyncinv_bench::export_observability_micro(
        "table3_cpu_split",
        100,
        100,
        asyncinv::ServerKind::AsyncPool,
    );
}
