//! **Fig 7** — throughput and response time vs. added network latency
//! (client-side `tc` in the paper) at concurrency 100, 100 KB responses.
//!
//! Paper: 5 ms of latency costs SingleT-Async ~95% of its throughput
//! (response time amplifies 0.18 s → 3.6 s through the wait-ACK rounds),
//! while the thread-based server barely moves.

use asyncinv::figures::Fidelity;
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Fig 7: sensitivity to network latency (100 KB, conc 100)",
        "latency multiplies the write-spin stalls: unbounded spinners \
         collapse, blocking and bounded-spin servers tolerate",
    );
    let fid = fidelity_from_args();
    let lats: &[u64] = match fid {
        Fidelity::Quick => &[0, 5000],
        Fidelity::Full => &[0, 1000, 2000, 5000, 10000],
    };
    let rows = asyncinv::figures::fig07_latency(fid, lats);
    asyncinv_bench::print_and_export("fig07_latency", &throughput_table(&rows));

    // Figure shape: throughput vs added latency, one series per server.
    let mut chart = asyncinv::Chart::new(
        "throughput [req/s] vs added one-way latency [ms] (100 KB, conc 100)",
        64,
        16,
    );
    let mut names: Vec<String> = Vec::new();
    for r in &rows {
        if !names.contains(&r.server) {
            names.push(r.server.clone());
        }
    }
    for name in names {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.server == name)
            .map(|r| (r.added_latency_us as f64 / 1000.0, r.throughput))
            .collect();
        chart.series(name, pts);
    }
    println!("{chart}");
    asyncinv_bench::export_observability_micro(
        "fig07_latency",
        16,
        100,
        asyncinv::ServerKind::SyncThread,
    );
}
