//! **schedule_explorer** — schedule-race exploration of the parallel
//! fleet driver (extension beyond the paper): the conservative-sync
//! design claims *no* worker phase-completion or fold-back order can
//! change the result, and this harness certifies it empirically by
//! running one stressed 3-shard fleet — retries, hedging, a mid-run
//! brownout and a shed override all engaged — under the canonical
//! schedule, the full bounded-exhaustive (rotation × reversal) plan set,
//! and a bank of seeded per-batch Fisher–Yates shuffles, asserting the
//! `FleetSummary`, the trace stream, the exported counters and the
//! (bit-compared) gauges stay byte-identical throughout.
//!
//! Each run's `ScheduleTrace` signature fingerprints the interleaving it
//! actually walked; the harness counts **distinct** signatures so the
//! headline claim is honest — the full run must certify at least 100
//! genuinely different schedules, not 100 labels for the same walk.
//!
//! ```sh
//! cargo run --release -p asyncinv-bench --bin schedule_explorer            # full
//! cargo run --release -p asyncinv-bench --bin schedule_explorer -- --quick # smoke
//! ```
//!
//! The full run writes `results/schedule_explorer.json`; any divergence
//! or a shortfall of distinct schedules exits 1.

use asyncinv::fault::{FaultEvent, FaultKind, FaultPlan, ShedConfig, ShedPolicy};
use asyncinv::fleet::{
    BalancerKind, FleetConfig, HedgeConfig, ParallelCluster, SchedulePlan, ScheduleTrace,
    ShardFault, ShardShed,
};
use asyncinv::obs::{Recorder, TraceEvent};
use asyncinv::workload::RetryPolicy;
use asyncinv::{fmt_f64, ExperimentConfig, ServerKind, SimDuration, Table};
use asyncinv_bench::{banner, fidelity_from_args, print_and_export};
use serde::Serialize;
use std::collections::BTreeSet;

/// The stressed 3-shard fleet (mirrors `tests/prop_parallel.rs`): every
/// plane that could racily share state is engaged, so a schedule that
/// *could* leak into the result would.
fn stressed_cfg(measure_ms: u64) -> FleetConfig {
    let mut cell = ExperimentConfig::micro(8, 10 * 1024);
    cell.warmup = SimDuration::from_millis(100);
    cell.measure = SimDuration::from_millis(measure_ms);
    cell.trace_capacity = 1 << 16;
    cell.retry = RetryPolicy {
        timeout: Some(SimDuration::from_millis(20)),
        max_retries: 3,
        budget_ratio: 0.5,
        ..RetryPolicy::default()
    };
    let mut cfg = FleetConfig::new(cell, 3, BalancerKind::PowerOfTwoChoices { seed: 0x5eed });
    cfg.hedge = Some(HedgeConfig { min_samples: 16, ..HedgeConfig::default() });
    cfg.shard_faults = vec![ShardFault {
        shard: 1,
        plan: FaultPlan {
            seed: 5,
            events: vec![FaultEvent {
                at: SimDuration::from_millis(200),
                fault: FaultKind::Slowdown {
                    factor: 16.0,
                    duration: Some(SimDuration::from_millis(150)),
                },
            }],
        },
    }];
    cfg.shard_shed = vec![ShardShed {
        shard: 2,
        shed: ShedConfig {
            max_concurrent: 1,
            queue_cap: 1,
            policy: ShedPolicy::DropOldest,
            reject_bytes: 256,
        },
    }];
    cfg
}

/// Everything a traced run externalizes, flattened for bit comparison.
type TraceState = (Vec<TraceEvent>, Vec<String>, Vec<(String, u64)>, Vec<u64>);

fn trace_state(rec: &Recorder) -> TraceState {
    let events: Vec<TraceEvent> = rec.events().copied().collect();
    let names = rec.thread_names().to_vec();
    let mut counters: Vec<(String, u64)> =
        rec.registry().counters().map(|(n, v)| (n.to_string(), v)).collect();
    counters.sort();
    let gauges: Vec<u64> = {
        let mut g: Vec<(String, f64)> =
            rec.registry().gauges().map(|(n, v)| (n.to_string(), v)).collect();
        g.sort_by(|a, b| a.0.cmp(&b.0));
        g.into_iter().map(|(_, v)| v.to_bits()).collect()
    };
    (events, names, counters, gauges)
}

fn plan_label(plan: SchedulePlan) -> String {
    match plan {
        SchedulePlan::Canonical => "canonical".into(),
        SchedulePlan::Systematic { exec_rot, exec_rev, cons_rot, cons_rev } => format!(
            "rot{exec_rot}{}x{cons_rot}{}",
            if exec_rev { "r" } else { "" },
            if cons_rev { "r" } else { "" },
        ),
        SchedulePlan::Shuffled { seed } => format!("shuffle{seed}"),
    }
}

/// The exported certificate of one exploration campaign.
#[derive(Debug, Serialize)]
struct Certificate {
    runs: u64,
    distinct_schedules: usize,
    batches: u64,
    jobs: u64,
    identical: bool,
    completions: u64,
    hedges: u64,
    shed_dropped: u64,
    fault_events: u64,
}

fn main() {
    let quick = matches!(fidelity_from_args(), asyncinv::figures::Fidelity::Quick);
    banner(
        "schedule explorer: worker interleavings of the parallel fleet driver",
        "no phase execution or fold-back order — exhaustively enumerated or \
         seeded-shuffled — changes one bit of the summary, trace or gauges",
    );
    // The quick lane still covers the whole bounded-exhaustive plan set;
    // the full run adds enough shuffles to certify >= 100 distinct
    // schedules.
    let (measure_ms, shuffle_seeds) = if quick { (200, 4u64) } else { (400, 80u64) };
    let cfg = stressed_cfg(measure_ms);
    let kind = ServerKind::NettyLike;

    let (base, base_rec, base_trace) =
        ParallelCluster::new(cfg.clone()).run_traced_scheduled(kind, SchedulePlan::Canonical);
    let base_state = trace_state(&base_rec);
    assert!(base.fleet.hedges > 0, "hedging must engage on the stressed fleet");
    assert!(base.fleet.shed_dropped > 0, "shedding must engage on the stressed fleet");
    assert!(base.fleet.fault_events > 0, "the brownout must fire");
    println!(
        "stressed fleet: {} shards, {} batches / {} phase jobs per run, \
         {} completions, {} hedges, {} shed, {} fault events\n",
        cfg.shards,
        base_trace.batches,
        base_trace.jobs,
        base.fleet.completions,
        base.fleet.hedges,
        base.fleet.shed_dropped,
        base.fleet.fault_events,
    );

    let mut plans: Vec<SchedulePlan> = SchedulePlan::enumerate(3);
    plans.extend((0..shuffle_seeds).map(|seed| SchedulePlan::Shuffled { seed }));

    let mut signatures: BTreeSet<u64> = BTreeSet::new();
    signatures.insert(base_trace.signature);
    let mut divergences = 0u64;
    let mut runs = 1u64;
    let mut sample: Vec<(String, ScheduleTrace, bool)> =
        vec![("canonical".into(), base_trace, true)];
    for plan in plans {
        if plan == SchedulePlan::Canonical {
            continue;
        }
        let (s, rec, tr) = ParallelCluster::new(cfg.clone()).run_traced_scheduled(kind, plan);
        runs += 1;
        let ok = s == base && trace_state(&rec) == base_state && tr.batches == base_trace.batches;
        if !ok {
            divergences += 1;
            eprintln!("DIVERGED under {plan:?}");
        }
        if tr.permuted_batches == 0 {
            divergences += 1;
            eprintln!("FAIL: {plan:?} never actually permuted a batch");
        }
        signatures.insert(tr.signature);
        if sample.len() < 12 {
            sample.push((plan_label(plan), tr, ok));
        }
    }

    let mut t = Table::new(vec![
        "schedule".into(),
        "batches".into(),
        "permuted".into(),
        "signature".into(),
        "identical".into(),
    ]);
    t.numeric();
    for (label, tr, ok) in &sample {
        t.row(vec![
            label.clone(),
            tr.batches.to_string(),
            tr.permuted_batches.to_string(),
            format!("{:016x}", tr.signature),
            if *ok { "ok".into() } else { "FAIL".into() },
        ]);
    }
    println!("first {} of {} explored schedules:", sample.len(), runs);
    print_and_export("schedule_explorer", &t);

    let needed = if quick { 30 } else { 100 };
    let cert = Certificate {
        runs,
        distinct_schedules: signatures.len(),
        batches: base_trace.batches,
        jobs: base_trace.jobs,
        identical: divergences == 0,
        completions: base.fleet.completions,
        hedges: base.fleet.hedges,
        shed_dropped: base.fleet.shed_dropped,
        fault_events: base.fleet.fault_events,
    };
    println!(
        "\nheadline: {} runs walked {} distinct schedules ({} batches x {} jobs each) \
         -> {} divergences (goodput {} req/s under every one)",
        cert.runs,
        cert.distinct_schedules,
        cert.batches,
        cert.jobs,
        divergences,
        fmt_f64(base.fleet.throughput, 1),
    );
    if !quick {
        let json = serde_json::to_string_pretty(&cert).expect("serialize certificate");
        std::fs::create_dir_all("results").expect("mkdir results");
        std::fs::write("results/schedule_explorer.json", json + "\n")
            .expect("write results/schedule_explorer.json");
        println!("wrote results/schedule_explorer.json");
    }
    if divergences > 0 || cert.distinct_schedules < needed {
        if cert.distinct_schedules < needed {
            eprintln!(
                "FAIL: only {} distinct schedules explored (need >= {needed})",
                cert.distinct_schedules
            );
        }
        std::process::exit(1);
    }
}
