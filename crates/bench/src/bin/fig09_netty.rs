//! **Fig 9** — NettyServer vs SingleT-Async vs sTomcat-Sync across
//! concurrencies, for 100 KB (a) and 0.1 KB (b) responses.
//!
//! Paper: (a) Netty's bounded writeSpin mitigates the spin and wins on
//! 100 KB; (b) its pipeline/outbound-buffer machinery makes it lose to the
//! bare single-threaded server on 0.1 KB.

use asyncinv::figures::Fidelity;
use asyncinv_bench::{banner, fidelity_from_args, throughput_table};

fn main() {
    banner(
        "Fig 9: Netty's write optimization — benefit and overhead",
        "bounded spin wins on heavy responses, costs on light ones",
    );
    let fid = fidelity_from_args();
    let concs: &[usize] = match fid {
        Fidelity::Quick => &[8, 100],
        Fidelity::Full => &[1, 8, 16, 64, 100, 200, 400],
    };
    let rows = asyncinv::figures::fig09_netty(fid, concs);
    asyncinv_bench::print_and_export("fig09_netty", &throughput_table(&rows));
    // The 100 KB cell, where Netty's park/resume and write-spin marks show.
    asyncinv_bench::export_observability_micro(
        "fig09_netty",
        8,
        100 * 1024,
        asyncinv::ServerKind::NettyLike,
    );
}
