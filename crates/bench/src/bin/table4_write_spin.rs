//! **Table IV** — `socket.write()` calls per request in SingleT-Async.
//!
//! Paper: 1 call/request at 0.1 KB and 10 KB, but ~102 calls/request at
//! 100 KB — the write-spin problem caused by the 16 KB send buffer and the
//! TCP wait-ACK mechanism.

use asyncinv::{fmt_f64, Table};
use asyncinv_bench::{banner, fidelity_from_args};

fn main() {
    banner(
        "Table IV: write calls per request (SingleT-Async)",
        "100 KB responses spin: ~100 write() calls per request vs 1",
    );
    let rows = asyncinv::figures::table4_write_spin(fidelity_from_args());
    let mut t = Table::new(vec![
        "resp. size".into(),
        "# req.".into(),
        "# socket.write()".into(),
        "# write() per req.".into(),
        "# zero-return per req.".into(),
    ]);
    t.numeric();
    for r in &rows {
        let writes = (r.writes_per_req * r.completions as f64).round();
        t.row(vec![
            format!("{}B", r.response_size),
            r.completions.to_string(),
            fmt_f64(writes, 0),
            fmt_f64(r.writes_per_req, 1),
            fmt_f64(r.spins_per_req, 1),
        ]);
    }
    asyncinv_bench::print_and_export("table4_write_spin", &t);
    asyncinv_bench::export_observability_micro(
        "table4_write_spin",
        1,
        100 * 1024,
        asyncinv::ServerKind::SingleThread,
    );
}
