//! Worker-thread-count policy shared by every parallel driver.
//!
//! Both the cell runner in `asyncinv-core` and the parallel fleet driver
//! in `asyncinv-fleet` need the same answer to "how many OS threads may I
//! use?". That policy lives here — the lowest layer both crates already
//! depend on — so it is resolved once and identically everywhere:
//! `ASYNCINV_THREADS` if set, otherwise the machine's available
//! parallelism. Thread *count* never affects simulation results (asserted
//! by `tests/runner_parallel.rs` and `tests/prop_parallel.rs`); it only
//! changes wall-clock time.

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "ASYNCINV_THREADS";

/// The worker-thread count to use: `ASYNCINV_THREADS` if set and valid
/// (values `< 1` are treated as 1), otherwise the machine's available
/// parallelism, otherwise 1.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
