//! Virtual time types.
//!
//! The simulation clock is a monotonically non-decreasing count of
//! nanoseconds since simulation start. Two newtypes keep instants and
//! durations from being confused (C-NEWTYPE): [`SimTime`] is a point on the
//! virtual timeline, [`SimDuration`] is a span between two points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// ```
/// use asyncinv_simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use asyncinv_simcore::SimDuration;
/// let d = SimDuration::from_micros(2) * 3;
/// assert_eq!(d.as_nanos(), 6_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds (rounding to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid duration factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Serialize for SimTime {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for SimTime {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(v).map(SimTime)
    }
}

impl Serialize for SimDuration {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for SimDuration {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(v).map(SimDuration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_micros(), 14);
        assert_eq!((t - d).as_micros(), 6);
        assert_eq!(((t + d) - t).as_micros(), 4);
        assert_eq!((d * 3).as_micros(), 12);
        assert_eq!((d / 2).as_micros(), 2);
        assert_eq!((d + d - d).as_micros(), 4);
    }

    #[test]
    fn duration_since_works() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(12);
        assert_eq!(b.duration_since(a).as_micros(), 7);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-6).as_nanos(), 1_500);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_ops() {
        let d = SimDuration::from_nanos(5);
        assert_eq!(d.saturating_sub(SimDuration::from_nanos(9)).as_nanos(), 0);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(10).to_string(), "10.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t+1.000s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(5);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}
