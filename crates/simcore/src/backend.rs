//! Pluggable event-queue backends for [`Simulation`](crate::Simulation).
//!
//! The kernel's hot loop is "pop the earliest event, maybe push a few
//! follow-ups". Which priority-queue shape wins depends on the standing
//! event population: the binary heap ([`EventQueue`](crate::EventQueue))
//! has the best constants for small populations and bursty
//! push-all-then-drain phases, while the calendar queue
//! ([`CalendarQueue`](crate::CalendarQueue)) is O(1) amortized on
//! steady-state *hold* traffic once the population is large enough to
//! amortize its bucket bookkeeping.
//!
//! [`QueueBackend`] abstracts the queue shape behind the same stable
//! (time, insertion-order) contract, and [`AdaptiveQueue`] — the default
//! backend — picks the cheaper shape at runtime, mirroring the source
//! paper's theme of routing each invocation down its cheapest execution
//! path. All backends produce byte-identical event orderings; property
//! tests in `tests/prop_simcore.rs` enforce this.

use crate::calendar::CalendarQueue;
use crate::ladder::LadderQueue;
use crate::queue::EventQueue;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which queue backend a [`Simulation`](crate::Simulation) should use —
/// the config-level counterpart of the [`QueueBackend`] type parameter.
///
/// Experiment configs carry one of these (defaulting to
/// [`BackendKind::Adaptive`]) and engines dispatch their generic drive
/// loop on it, so a backend can be pinned per run for benchmarking
/// without changing any code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Binary heap ([`EventQueue`](crate::EventQueue)).
    Heap,
    /// Calendar queue ([`CalendarQueue`](crate::CalendarQueue)).
    Calendar,
    /// Heap that migrates to a calendar under load ([`AdaptiveQueue`]).
    #[default]
    Adaptive,
    /// Ladder queue ([`LadderQueue`](crate::LadderQueue)): flat hold cost
    /// at 100k+ event populations.
    Ladder,
}

impl BackendKind {
    /// All kinds, in heap → calendar → adaptive → ladder order (bench
    /// sweeps).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Heap,
        BackendKind::Calendar,
        BackendKind::Adaptive,
        BackendKind::Ladder,
    ];

    /// The backend's short name ("heap", "calendar", "adaptive", "ladder").
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Heap => "heap",
            BackendKind::Calendar => "calendar",
            BackendKind::Adaptive => "adaptive",
            BackendKind::Ladder => "ladder",
        }
    }

    /// Parses a short name as produced by [`BackendKind::name`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "heap" => Some(BackendKind::Heap),
            "calendar" => Some(BackendKind::Calendar),
            "adaptive" => Some(BackendKind::Adaptive),
            "ladder" => Some(BackendKind::Ladder),
            _ => None,
        }
    }
}

/// A stable min-priority queue of timestamped events, usable as the
/// backing store of a [`Simulation`](crate::Simulation).
///
/// # Contract
///
/// Implementations must deliver events in ascending `(time, insertion
/// order)` — FIFO for equal timestamps. This is load-bearing for
/// reproducibility: swapping backends must never change simulation
/// results, only wall-clock performance.
pub trait QueueBackend<E>: Default {
    /// Short human-readable backend name ("heap", "calendar", "adaptive").
    const NAME: &'static str;

    /// Enqueues `event` for delivery at `time`.
    fn push(&mut self, time: SimTime, event: E);

    /// Removes and returns the earliest event, or `None` when empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the earliest pending event, if any. O(1) for every
    /// backend in this crate.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    fn clear(&mut self);
}

impl<E> QueueBackend<E> for EventQueue<E> {
    const NAME: &'static str = "heap";

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        EventQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn clear(&mut self) {
        EventQueue::clear(self);
    }
}

impl<E> QueueBackend<E> for CalendarQueue<E> {
    const NAME: &'static str = "calendar";

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        CalendarQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }

    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn clear(&mut self) {
        CalendarQueue::clear(self);
    }
}

impl<E> QueueBackend<E> for LadderQueue<E> {
    const NAME: &'static str = "ladder";

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        LadderQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        LadderQueue::pop(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        LadderQueue::peek_time(self)
    }

    #[inline]
    fn len(&self) -> usize {
        LadderQueue::len(self)
    }

    fn clear(&mut self) {
        LadderQueue::clear(self);
    }
}

/// Population threshold above which [`AdaptiveQueue`] migrates from the
/// binary heap to the calendar queue.
///
/// Deliberately conservative: on *pure* hold traffic the calendar already
/// wins near population ~100 (`kernel_bench`), but real experiment cells
/// interleave holds with bursts and deadline peeks where the heap's
/// constants win until the population is well into the thousands. The
/// recorded `BENCH_kernel.json` grid timings are what set this value.
pub const DEFAULT_SWITCH_UP: usize = 2048;

/// Population threshold below which [`AdaptiveQueue`] migrates back from
/// the calendar queue to the binary heap. Kept well under
/// [`DEFAULT_SWITCH_UP`] so a population oscillating around one threshold
/// cannot thrash migrations.
pub const DEFAULT_SWITCH_DOWN: usize = 512;

#[derive(Debug)]
enum Inner<E> {
    Heap(EventQueue<E>),
    // Boxed so the enum (and the Simulation embedding it) stays as small
    // as the bare heap: the calendar's ~12-word struct would otherwise
    // ride along in every small-population simulation's cache footprint.
    Calendar(Box<CalendarQueue<E>>),
}

/// The default [`Simulation`](crate::Simulation) backend: starts on the
/// binary heap and migrates to a calendar queue once the standing event
/// population crosses a threshold (and back down under a lower one —
/// hysteresis prevents thrashing).
///
/// Migration drains the old structure in `(time, seq)` order into the new
/// one, so FIFO tie-breaking — and therefore the exact event ordering —
/// is preserved across the switch.
///
/// ```
/// use asyncinv_simcore::{AdaptiveQueue, QueueBackend, SimTime};
///
/// let mut q = AdaptiveQueue::new();
/// q.push(SimTime::from_micros(5), "b");
/// q.push(SimTime::from_micros(1), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// ```
#[derive(Debug)]
pub struct AdaptiveQueue<E> {
    inner: Inner<E>,
    switch_up: usize,
    switch_down: usize,
    migrations: u64,
}

impl<E> AdaptiveQueue<E> {
    /// Creates an empty queue with the default migration thresholds.
    pub fn new() -> Self {
        AdaptiveQueue::with_thresholds(DEFAULT_SWITCH_UP, DEFAULT_SWITCH_DOWN)
    }

    /// Creates an empty queue with custom migration thresholds: migrate to
    /// the calendar when the population exceeds `switch_up`, back to the
    /// heap when it falls below `switch_down`.
    ///
    /// # Panics
    ///
    /// Panics unless `switch_down < switch_up` (the hysteresis gap must be
    /// non-empty, or migrations could thrash every operation).
    pub fn with_thresholds(switch_up: usize, switch_down: usize) -> Self {
        assert!(
            switch_down < switch_up,
            "adaptive thresholds must leave a hysteresis gap: down={switch_down}, up={switch_up}"
        );
        AdaptiveQueue {
            inner: Inner::Heap(EventQueue::new()),
            switch_up,
            switch_down,
            migrations: 0,
        }
    }

    /// Which shape currently backs the queue: `"heap"` or `"calendar"`.
    pub fn active_backend(&self) -> &'static str {
        match &self.inner {
            Inner::Heap(_) => "heap",
            Inner::Calendar(_) => "calendar",
        }
    }

    /// How many heap↔calendar migrations have happened so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Drains the current structure in (time, seq) order into the other
    /// shape. Re-inserting in pop order assigns fresh increasing sequence
    /// numbers, so FIFO tie-breaking is preserved exactly.
    #[cold]
    #[inline(never)]
    fn migrate(&mut self) {
        self.migrations += 1;
        match &mut self.inner {
            Inner::Heap(heap) => {
                let mut cal = Box::new(CalendarQueue::new());
                while let Some((t, e)) = heap.pop() {
                    cal.push(t, e);
                }
                self.inner = Inner::Calendar(cal);
            }
            Inner::Calendar(cal) => {
                let mut heap = EventQueue::with_capacity(cal.len());
                while let Some((t, e)) = cal.pop() {
                    heap.push(t, e);
                }
                self.inner = Inner::Heap(heap);
            }
        }
    }

    /// Enqueues `event` for delivery at `time`, migrating heap → calendar
    /// when the population crosses the upper threshold.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        match &mut self.inner {
            Inner::Heap(q) => {
                q.push(time, event);
                if q.len() > self.switch_up {
                    self.migrate();
                }
            }
            Inner::Calendar(q) => q.push(time, event),
        }
    }

    /// Removes and returns the earliest event, migrating calendar → heap
    /// when the population falls under the lower threshold.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Heap(q) => q.pop(),
            Inner::Calendar(q) => {
                let out = q.pop();
                if q.len() < self.switch_down {
                    self.migrate();
                }
                out
            }
        }
    }

    /// The timestamp of the earliest pending event, if any. O(1).
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Heap(q) => q.peek_time(),
            Inner::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(q) => q.len(),
            Inner::Calendar(q) => q.len(),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events and falls back to the heap shape.
    pub fn clear(&mut self) {
        self.inner = Inner::Heap(EventQueue::new());
    }
}

impl<E> Default for AdaptiveQueue<E> {
    fn default() -> Self {
        AdaptiveQueue::new()
    }
}

impl<E> QueueBackend<E> for AdaptiveQueue<E> {
    const NAME: &'static str = "adaptive";

    #[inline]
    fn push(&mut self, time: SimTime, event: E) {
        AdaptiveQueue::push(self, time, event);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        AdaptiveQueue::pop(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        AdaptiveQueue::peek_time(self)
    }

    #[inline]
    fn len(&self) -> usize {
        AdaptiveQueue::len(self)
    }

    fn clear(&mut self) {
        AdaptiveQueue::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_orders_like_heap_across_migrations() {
        // Tight thresholds force both migrations inside a modest schedule.
        let mut adaptive = AdaptiveQueue::with_thresholds(32, 8);
        let mut heap = EventQueue::new();
        let push = |a: &mut AdaptiveQueue<u64>, h: &mut EventQueue<u64>, t: u64, v: u64| {
            a.push(SimTime::from_nanos(t), v);
            h.push(SimTime::from_nanos(t), v);
        };
        // Grow far past the upper threshold with colliding timestamps.
        for i in 0..100u64 {
            push(&mut adaptive, &mut heap, (i * 37) % 40, i);
        }
        assert_eq!(adaptive.active_backend(), "calendar");
        // Drain below the lower threshold, interleaving pushes.
        for i in 100..120u64 {
            assert_eq!(adaptive.pop(), heap.pop());
            assert_eq!(adaptive.peek_time(), heap.peek_time());
            push(&mut adaptive, &mut heap, (i * 37) % 40 + 50, i);
        }
        while let Some(got) = adaptive.pop() {
            assert_eq!(Some(got), heap.pop());
        }
        assert!(heap.pop().is_none());
        assert_eq!(adaptive.active_backend(), "heap");
        assert!(adaptive.migrations() >= 2);
    }

    #[test]
    fn hysteresis_gap_is_enforced() {
        let r = std::panic::catch_unwind(|| AdaptiveQueue::<()>::with_thresholds(8, 8));
        assert!(r.is_err());
    }

    #[test]
    fn clear_resets_to_heap() {
        let mut q = AdaptiveQueue::with_thresholds(4, 1);
        for i in 0..10u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert_eq!(q.active_backend(), "calendar");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.active_backend(), "heap");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn backend_trait_is_object_safe_enough_for_generics() {
        fn drain<Q: QueueBackend<u32>>(mut q: Q) -> Vec<u32> {
            q.push(SimTime::from_nanos(2), 2);
            q.push(SimTime::from_nanos(1), 1);
            std::iter::from_fn(move || q.pop()).map(|(_, e)| e).collect()
        }
        assert_eq!(drain(EventQueue::new()), [1, 2]);
        assert_eq!(drain(CalendarQueue::new()), [1, 2]);
        assert_eq!(drain(AdaptiveQueue::new()), [1, 2]);
        assert_eq!(<EventQueue<u32> as QueueBackend<u32>>::NAME, "heap");
        assert_eq!(<CalendarQueue<u32> as QueueBackend<u32>>::NAME, "calendar");
        assert_eq!(<AdaptiveQueue<u32> as QueueBackend<u32>>::NAME, "adaptive");
    }
}
