//! The simulation driver: a virtual clock plus a pluggable event queue.

use std::marker::PhantomData;

use crate::backend::{AdaptiveQueue, QueueBackend};
use crate::calendar::CalendarQueue;
use crate::ladder::LadderQueue;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation: virtual clock, event queue, scheduling API.
///
/// The kernel is intentionally model-agnostic: callers pop events with
/// [`Simulation::next_event`] and dispatch them to their own state machines,
/// scheduling follow-up events as they go. This "inverted" loop keeps all
/// model state outside the kernel, which sidesteps borrow conflicts between
/// the queue and the model.
///
/// The queue shape is a type parameter implementing [`QueueBackend`]; the
/// default is [`AdaptiveQueue`], which starts on the binary heap and
/// migrates to a calendar queue under large standing populations. Every
/// backend delivers the exact same event ordering (stable FIFO on equal
/// timestamps), so the choice affects wall-clock speed only — use
/// [`HeapSimulation`] / [`CalendarSimulation`] to pin a shape, e.g. for
/// benchmarking.
///
/// ```
/// use asyncinv_simcore::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimDuration::from_micros(1), 1u32);
/// while let Some((now, ev)) = sim.next_event() {
///     if ev < 4 {
///         sim.schedule(SimDuration::from_micros(1), ev + 1);
///     }
///     assert_eq!(now.as_micros(), ev as u64);
/// }
/// assert_eq!(sim.now().as_micros(), 4);
/// ```
#[derive(Debug)]
pub struct Simulation<E, Q = AdaptiveQueue<E>>
where
    Q: QueueBackend<E>,
{
    queue: Q,
    now: SimTime,
    processed: u64,
    _events: PhantomData<fn() -> E>,
}

/// A [`Simulation`] pinned to the binary-heap backend.
pub type HeapSimulation<E> = Simulation<E, EventQueue<E>>;

/// A [`Simulation`] pinned to the calendar-queue backend.
pub type CalendarSimulation<E> = Simulation<E, CalendarQueue<E>>;

/// A [`Simulation`] pinned to the ladder-queue backend.
pub type LadderSimulation<E> = Simulation<E, LadderQueue<E>>;

impl<E> Simulation<E> {
    /// Creates a simulation with the clock at [`SimTime::ZERO`] and the
    /// default adaptive queue backend.
    ///
    /// (Like `HashMap::new`, this constructor is defined only for the
    /// default backend so plain `Simulation::new()` infers; use
    /// [`Simulation::with_backend`] or `Q::default()` via
    /// [`Default::default`] to pick another shape.)
    pub fn new() -> Self {
        Simulation::with_backend(AdaptiveQueue::new())
    }
}

impl<E, Q: QueueBackend<E>> Simulation<E, Q> {
    /// Creates a simulation backed by the given queue (which may already
    /// hold events).
    pub fn with_backend(queue: Q) -> Self {
        Simulation {
            queue,
            now: SimTime::ZERO,
            processed: 0,
            _events: PhantomData,
        }
    }

    /// The backend's short name ("heap", "calendar", "adaptive").
    pub fn backend_name(&self) -> &'static str {
        Q::NAME
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire `after` the current time.
    pub fn schedule(&mut self, after: SimDuration, event: E) {
        self.queue.push(self.now + after, event);
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time; the simulation
    /// clock never runs backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire immediately (at the current time, after any
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty; the clock stays where it is.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// When the next event is later than `deadline` (or the queue is empty)
    /// the clock advances to `deadline` and `None` is returned. This is the
    /// primitive used to run a simulation "for 60 virtual seconds".
    pub fn next_event_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.next_event(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// The timestamp of the next pending event, if any. O(1) on every
    /// backend in this crate.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drops all pending events (used at experiment teardown).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E, Q: QueueBackend<E>> Default for Simulation<E, Q> {
    fn default() -> Self {
        Simulation::with_backend(Q::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_micros(10), "late");
        sim.schedule(SimDuration::from_micros(2), "early");
        let (t, e) = sim.next_event().unwrap();
        assert_eq!((t.as_micros(), e), (2, "early"));
        assert_eq!(sim.now().as_micros(), 2);
        let (t, e) = sim.next_event().unwrap();
        assert_eq!((t.as_micros(), e), (10, "late"));
        assert!(sim.next_event().is_none());
        assert_eq!(sim.now().as_micros(), 10);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::ZERO, 1);
        sim.schedule_now(2);
        assert_eq!(sim.next_event().unwrap().1, 1);
        assert_eq!(sim.next_event().unwrap().1, 2);
    }

    #[test]
    fn relative_scheduling_is_from_current_time() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_micros(5), ());
        sim.next_event().unwrap();
        sim.schedule(SimDuration::from_micros(5), ());
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t.as_micros(), 10);
    }

    #[test]
    fn deadline_stops_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_millis(10), ());
        let deadline = SimTime::from_millis(5);
        assert!(sim.next_event_before(deadline).is_none());
        assert_eq!(sim.now(), deadline);
        // Event still pending and deliverable after the deadline moves.
        assert!(sim.next_event_before(SimTime::from_millis(20)).is_some());
        assert_eq!(sim.now().as_millis(), 10);
    }

    #[test]
    fn deadline_with_empty_queue_advances_clock() {
        let mut sim: Simulation<()> = Simulation::new();
        assert!(sim.next_event_before(SimTime::from_secs(1)).is_none());
        assert_eq!(sim.now().as_secs_f64(), 1.0);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_micros(5), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_micros(1), ());
    }

    #[test]
    fn clear_drops_pending() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_micros(5), ());
        sim.clear();
        assert_eq!(sim.pending(), 0);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn pinned_backends_match_the_default() {
        fn run<Q: QueueBackend<u32>>(mut sim: Simulation<u32, Q>) -> Vec<(u64, u32)> {
            for i in 0..400u32 {
                sim.schedule_at(SimTime::from_nanos(u64::from((i * 7) % 50)), i);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = sim.next_event() {
                out.push((t.as_nanos(), e));
            }
            out
        }
        let heap = run(HeapSimulation::default());
        let cal = run(CalendarSimulation::default());
        let ladder = run(LadderSimulation::default());
        let adaptive = run(Simulation::new());
        assert_eq!(heap, cal);
        assert_eq!(heap, ladder);
        assert_eq!(heap, adaptive);
        assert_eq!(
            HeapSimulation::<u32>::default().backend_name(),
            "heap"
        );
        assert_eq!(Simulation::<u32>::new().backend_name(), "adaptive");
    }
}
