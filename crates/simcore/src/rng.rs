//! Deterministic random number generation.
//!
//! Experiments must be bit-for-bit reproducible across machines and runs, so
//! the kernel ships its own small xoshiro256++ generator seeded explicitly
//! (never from the OS). Distribution helpers cover exactly what the workload
//! models need: uniform ranges, exponential think times, and bounded floats.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// ```
/// use asyncinv_simcore::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [1, 2, 3, 4]; // the all-zero state is a fixed point
        }
        SimRng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value uniformly distributed in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A value uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_in: lo ({lo}) must be < hi ({hi})");
        lo + self.gen_range(hi - lo)
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for think times and service-time jitter.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "invalid mean: {mean}");
        if mean == 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.next_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// A bounded-Pareto sample in `[lo, hi]` with tail exponent `alpha`.
    ///
    /// Heavy-tailed size distributions are the textbook model for web
    /// object sizes; the workload crate uses this to build realistic
    /// response-size mixes.
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` are not positive and ordered or `alpha` is not
    /// positive and finite.
    pub fn bounded_pareto_f64(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got {lo}..{hi}");
        assert!(alpha.is_finite() && alpha > 0.0, "invalid alpha: {alpha}");
        // Inverse-CDF sampling of the bounded Pareto distribution.
        let u = self.next_f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        let x = (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(r.gen_range(7) < 7);
        }
        for _ in 0..1_000 {
            let v = r.gen_range_in(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = SimRng::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(8) as usize] += 1;
        }
        for c in counts {
            // expect ~10000 each; allow generous tolerance
            assert!((9000..11000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp_f64(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "measured mean {mean}");
    }

    #[test]
    fn exp_zero_mean_is_zero() {
        let mut r = SimRng::new(17);
        assert_eq!(r.exp_f64(0.0), 0.0);
    }

    #[test]
    fn bounded_pareto_in_range_and_skewed() {
        let mut r = SimRng::new(41);
        let n = 50_000;
        let mut small = 0u32;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.bounded_pareto_f64(1.0, 1000.0, 1.2);
            assert!((1.0..=1000.0).contains(&x));
            if x < 10.0 {
                small += 1;
            }
            sum += x;
        }
        // Heavy tail: most mass near the floor, mean well above median.
        assert!(small as f64 / n as f64 > 0.7, "small fraction {small}");
        assert!(sum / n as f64 > 3.0);
    }

    #[test]
    #[should_panic]
    fn bounded_pareto_rejects_bad_range() {
        SimRng::new(1).bounded_pareto_f64(5.0, 1.0, 1.0);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = SimRng::new(23);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::new(29);
        let weights = [1.0, 3.0];
        let ones = (0..40_000)
            .filter(|_| r.weighted_index(&weights) == 1)
            .count();
        // expect 75%
        assert!((28_000..32_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::new(31);
        let mut child = a.fork();
        // The child stream must not mirror the parent.
        let same = (0..64).filter(|_| a.next_u64() == child.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic]
    fn gen_range_zero_panics() {
        SimRng::new(1).gen_range(0);
    }

    #[test]
    #[should_panic]
    fn gen_bool_out_of_range_panics() {
        SimRng::new(1).gen_bool(1.5);
    }
}
