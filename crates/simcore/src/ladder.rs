//! Ladder queue: a multi-tier bucket queue for very large event
//! populations (Tang, Goh & Thng, ACM TOMACS 2005).
//!
//! The calendar queue keeps every future event in per-day buckets that it
//! must keep *sorted on insert*, which collapses once tens of thousands
//! of events share the active window (`BENCH_kernel.json` hold rows). The
//! ladder instead defers all sorting until events are about to be popped:
//!
//! * **Top** — an unsorted append-only spill area for far-future events.
//!   Pushes are O(1).
//! * **Rungs** — a ladder of bucket arrays of geometrically decreasing
//!   width, created on demand by *spawning*: when a bucket about to be
//!   consumed is still large, it is spread across a finer rung below
//!   instead of being sorted.
//! * **Bottom** — one small sorted run, the only sorted structure, from
//!   which events are popped.
//!
//! Every event is touched O(1) amortized times on its way down, so the
//! hold-model cost stays flat as the population grows — this is the
//! backend that keeps a 100k-population shard affordable.
//!
//! The queue obeys the [`QueueBackend`](crate::QueueBackend) contract:
//! ascending `(time, insertion order)`, FIFO for equal timestamps. Each
//! entry carries the global insertion sequence, spreading is
//! order-preserving, and the per-run sort keys on `(time, seq)`, so
//! stability survives every transfer.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Spawn a finer rung instead of sorting when a consumed bucket still
/// holds more than this many events (and the ladder is not at depth).
const SORT_THRESHOLD: usize = 64;
/// Maximum ladder depth; beyond it buckets are sorted whatever their size.
const MAX_RUNGS: usize = 8;
/// Cap on the bucket count of any one rung or top transfer.
const MAX_BUCKETS: usize = 4096;

#[derive(Debug)]
struct Entry<E> {
    t: u64,
    seq: u64,
    ev: E,
}

#[derive(Debug)]
struct Rung<E> {
    /// Time at the left edge of bucket 0.
    start: u64,
    /// Bucket width in nanoseconds (>= 1).
    width: u64,
    /// First bucket not yet consumed.
    cur: usize,
    buckets: Vec<Vec<Entry<E>>>,
    /// Events currently stored across all buckets.
    count: usize,
}

impl<E> Rung<E> {
    /// Left edge of the first unconsumed bucket: pushes at or beyond this
    /// time may still enter the rung; earlier times belong further down.
    fn cur_start(&self) -> u64 {
        self.start + self.cur as u64 * self.width
    }
}

/// A stable min-priority queue of timestamped events built as a ladder
/// queue; drop-in [`QueueBackend`](crate::QueueBackend) for
/// [`Simulation`](crate::Simulation).
///
/// ```
/// use asyncinv_simcore::{LadderQueue, SimTime};
///
/// let mut q = LadderQueue::new();
/// q.push(SimTime::from_micros(5), "b");
/// q.push(SimTime::from_micros(5), "c");
/// q.push(SimTime::from_micros(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct LadderQueue<E> {
    /// Unsorted spill area for events at or beyond `top_start`.
    top: Vec<Entry<E>>,
    top_min: u64,
    top_max: u64,
    /// Lower edge of the top's domain; 0 while no transfer has happened,
    /// so a fresh queue sends everything to the top.
    top_start: u64,
    rungs: Vec<Rung<E>>,
    /// The one sorted run, ascending `(t, seq)`, popped from the front.
    bottom: VecDeque<Entry<E>>,
    /// Exclusive upper edge of the bottom's time span while it is active:
    /// pushes below it sorted-insert into the bottom directly.
    bottom_limit: u64,
    len: usize,
    seq: u64,
    /// Cached earliest pending time (kept eagerly so peeks are O(1)).
    head: Option<u64>,
}

impl<E> LadderQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LadderQueue {
            top: Vec::new(),
            top_min: u64::MAX,
            top_max: 0,
            top_start: 0,
            rungs: Vec::new(),
            bottom: VecDeque::new(),
            bottom_limit: 0,
            len: 0,
            seq: 0,
            head: None,
        }
    }

    /// Enqueues `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let t = time.as_nanos();
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.head = Some(self.head.map_or(t, |h| h.min(t)));
        let e = Entry { t, seq, ev: event };

        if !self.bottom.is_empty() && t < self.bottom_limit {
            self.insert_bottom(e);
            return;
        }
        if t >= self.top_start {
            self.top_min = self.top_min.min(t);
            self.top_max = self.top_max.max(t);
            self.top.push(e);
            return;
        }
        for r in &mut self.rungs {
            if t >= r.cur_start() {
                let idx = (((t - r.start) / r.width) as usize).min(r.buckets.len() - 1);
                debug_assert!(idx >= r.cur);
                r.buckets[idx].push(e);
                r.count += 1;
                return;
            }
        }
        // Below every rung's active edge: it belongs in the bottom even if
        // the bottom is currently empty. Activate it over the gap up to
        // the finest active edge.
        self.bottom_limit = self.rungs.last().map_or(self.top_start, Rung::cur_start);
        self.insert_bottom(e);
    }

    /// Sorted insert into the bottom run. `e.seq` is larger than every
    /// queued entry's, so the slot after the last entry with `t' <= e.t`
    /// keeps FIFO order for equal timestamps.
    fn insert_bottom(&mut self, e: Entry<E>) {
        let at = self.bottom.partition_point(|x| x.t <= e.t);
        self.bottom.insert(at, e);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.refill_bottom();
        let e = self.bottom.pop_front()?;
        self.len -= 1;
        // Keep the cached head accurate without scanning: eagerly pull the
        // next run down when this one is exhausted.
        self.refill_bottom();
        self.head = self.bottom.front().map(|x| x.t);
        Some((SimTime::from_nanos(e.t), e.ev))
    }

    /// The timestamp of the earliest pending event, if any. O(1).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(SimTime::from_nanos)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.top.clear();
        self.top_min = u64::MAX;
        self.top_max = 0;
        self.top_start = 0;
        self.rungs.clear();
        self.bottom.clear();
        self.bottom_limit = 0;
        self.len = 0;
        self.head = None;
    }

    /// Ensures the bottom holds the globally earliest run if any events
    /// are pending anywhere in the structure.
    fn refill_bottom(&mut self) {
        while self.bottom.is_empty() {
            // Drop exhausted rungs so pushes cannot target stale edges.
            while self.rungs.last().is_some_and(|r| r.count == 0) {
                self.rungs.pop();
            }
            if self.rungs.is_empty() {
                if self.top.is_empty() {
                    // Everything drained: reopen the top for all times.
                    self.top_start = 0;
                    return;
                }
                self.transfer_top();
                continue;
            }
            let depth = self.rungs.len();
            // The bucket grid can overhang the rung's true domain (the
            // last bucket's right edge exceeds the span it was built
            // over). Cap the bottom's claimed range at the enclosing
            // structure's active edge, or a push landing in the overhang
            // would enter the bottom while equal-time events from earlier
            // pushes still sit in the parent rung / top above it.
            let cap = if depth >= 2 {
                self.rungs[depth - 2].cur_start()
            } else {
                self.top_start
            };
            let r = self.rungs.last_mut().expect("nonempty rungs");
            while r.buckets[r.cur].is_empty() {
                r.cur += 1;
            }
            let idx = r.cur;
            let mut run = std::mem::take(&mut r.buckets[idx]);
            r.count -= run.len();
            r.cur += 1;
            if run.len() > SORT_THRESHOLD && depth < MAX_RUNGS && r.width > 1 {
                // Too big to sort: spread it across a finer rung below.
                let start = r.start + idx as u64 * r.width;
                let width = r.width;
                self.spawn_rung(start, width, run);
                continue;
            }
            run.sort_unstable_by_key(|x| (x.t, x.seq));
            self.bottom = run.into();
            self.bottom_limit = (r.start + (idx as u64 + 1) * r.width).min(cap);
        }
    }

    /// Moves the whole top into a fresh coarsest rung spanning its range.
    fn transfer_top(&mut self) {
        let nb = self.top.len().clamp(1, MAX_BUCKETS);
        let span = self.top_max - self.top_min;
        let width = span / nb as u64 + 1;
        let buckets = (span / width) as usize + 1;
        let mut rung = Rung {
            start: self.top_min,
            width,
            cur: 0,
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            count: self.top.len(),
        };
        for e in self.top.drain(..) {
            let idx = ((e.t - rung.start) / width) as usize;
            rung.buckets[idx].push(e);
        }
        self.top_start = self.top_max + 1;
        self.top_min = u64::MAX;
        self.top_max = 0;
        debug_assert!(self.rungs.is_empty());
        self.rungs.push(rung);
    }

    /// Spreads `run` (a consumed parent bucket covering `[start, start +
    /// width)`) across a new, finer rung appended below the current ones.
    fn spawn_rung(&mut self, start: u64, width: u64, run: Vec<Entry<E>>) {
        let nb = run.len().clamp(2, MAX_BUCKETS);
        let w = width / nb as u64 + 1;
        let buckets = ((width - 1) / w) as usize + 1;
        let mut rung = Rung {
            start,
            width: w,
            cur: 0,
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            count: run.len(),
        };
        // Iterating in stored order preserves per-bucket insertion order,
        // which the per-run `(t, seq)` sort then makes exact.
        for e in run {
            let idx = (((e.t - start) / w) as usize).min(buckets - 1);
            rung.buckets[idx].push(e);
        }
        self.rungs.push(rung);
    }
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        LadderQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = LadderQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo_across_spawns() {
        let mut q = LadderQueue::new();
        let t = SimTime::from_nanos(7);
        // Enough colliding entries to exceed SORT_THRESHOLD and force a
        // degenerate-width sort.
        for i in 0..500u32 {
            q.push(t, i);
        }
        for i in 0..500u32 {
            let (pt, e) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(e, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_hold_pattern() {
        // The hold model: pop one, push one slightly in the future.
        let mut lq = LadderQueue::new();
        let mut heap = crate::EventQueue::new();
        for i in 0..1000u64 {
            let t = SimTime::from_nanos((i * 7919) % 4096);
            lq.push(t, i);
            heap.push(t, i);
        }
        for i in 0..20_000u64 {
            let (t, v) = lq.pop().expect("ladder nonempty");
            let (ht, hv) = heap.pop().expect("heap nonempty");
            assert_eq!((t, v), (ht, hv), "hold step {i}");
            let nt = t + crate::SimDuration::from_nanos(1 + (v * 31) % 2048);
            lq.push(nt, v);
            heap.push(nt, v);
            assert_eq!(lq.peek_time(), heap.peek_time());
            assert_eq!(lq.len(), heap.len());
        }
    }

    #[test]
    fn pushes_below_active_edges_stay_ordered() {
        let mut q = LadderQueue::new();
        for i in 0..300u64 {
            q.push(SimTime::from_nanos(1000 + i * 100), i);
        }
        // Drain a few to build rungs/bottom, then push near times.
        for _ in 0..5 {
            q.pop();
        }
        q.push(SimTime::from_nanos(1550), 9000);
        q.push(SimTime::from_nanos(1450), 9001);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn far_future_inserts_go_to_the_reopened_top() {
        let mut q = LadderQueue::new();
        for i in 0..200u64 {
            q.push(SimTime::from_nanos(100 + i), i);
        }
        // Drain a little so a rung exists and the top's domain is closed
        // (`top_start` > 0), then spill events eons past every structure:
        // seconds against a nanosecond-scale rung grid.
        for _ in 0..10 {
            q.pop();
        }
        q.push(SimTime::from_secs(3600), 9000);
        q.push(SimTime::from_secs(7200), 9001);
        q.push(SimTime::from_nanos(150), 9002);
        let mut last = SimTime::ZERO;
        let mut n = 0;
        let mut got = Vec::new();
        while let Some((t, v)) = q.pop() {
            assert!(t >= last, "order violated at {t:?}");
            last = t;
            n += 1;
            if v >= 9000 {
                got.push((t, v));
            }
        }
        assert_eq!(n, 193);
        // The far-future pair pops last, in push order; after the near
        // events drained, the top transferred into a fresh coarse rung.
        assert_eq!(
            got[got.len() - 2..],
            [
                (SimTime::from_secs(3600), 9000),
                (SimTime::from_secs(7200), 9001)
            ]
        );
    }

    #[test]
    fn drain_while_inserting_at_the_pop_frontier() {
        // The adversarial hold pattern: every pop is chased by pushes at
        // exactly the popped instant (which must sort *after* anything
        // already queued there) and just above it, while the queue drains
        // to empty and refills — exercising bottom reuse, rung
        // exhaustion, and top reopening in one loop.
        let mut lq = LadderQueue::new();
        let mut heap = crate::EventQueue::new();
        let mut id = 0u64;
        for i in 0..256u64 {
            let t = SimTime::from_nanos((i * 37) % 512);
            lq.push(t, id);
            heap.push(t, id);
            id += 1;
        }
        let mut budget = 4096u32;
        loop {
            let a = lq.pop();
            assert_eq!(a, heap.pop());
            let Some((t, _)) = a else { break };
            if budget > 0 {
                budget -= 1;
                // Same-instant chaser plus a near-future one.
                lq.push(t, id);
                heap.push(t, id);
                id += 1;
                let nt = t + crate::SimDuration::from_nanos(id % 17);
                lq.push(nt, id);
                heap.push(nt, id);
                id += 1;
            }
            assert_eq!(lq.peek_time(), heap.peek_time());
            assert_eq!(lq.len(), heap.len());
        }
        assert!(lq.is_empty());
    }

    #[test]
    fn massive_same_instant_ties_across_structures() {
        // Ties split across the bottom, a rung, and the top at once: the
        // global (time, seq) order must still interleave them FIFO.
        let mut q = LadderQueue::new();
        let tie = SimTime::from_nanos(1000);
        let mut expect = Vec::new();
        for i in 0..100u64 {
            q.push(tie, i);
            expect.push(i);
        }
        for i in 0..50u64 {
            q.push(SimTime::from_nanos(i), 1000 + i);
        }
        // Drain the early events; the tie block is still upstream.
        for _ in 0..50 {
            q.pop();
        }
        // More ties arrive after a partial drain, through a different path
        // (the structures now have active edges).
        for i in 100..200u64 {
            q.push(tie, i);
            expect.push(i);
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, v)| {
            assert_eq!(t, tie);
            v
        })
        .collect();
        assert_eq!(got, expect, "ties must pop in global insertion order");
    }

    #[test]
    fn len_clear_and_empty() {
        let mut q = LadderQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        for i in 0..100u64 {
            q.push(SimTime::from_nanos(i * 3), i);
        }
        assert_eq!(q.len(), 100);
        q.pop();
        assert_eq!(q.len(), 99);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        // Reusable after clear.
        q.push(SimTime::from_nanos(5), 1);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
