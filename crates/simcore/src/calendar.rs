//! A calendar queue (R. Brown, CACM 1988): the classic O(1)-amortized
//! priority queue for discrete-event simulation.
//!
//! Events are hashed into day buckets by `time / width % days`; dequeue
//! walks the calendar from the current day, only accepting events that
//! fall within the current year. The structure resizes itself (doubling or
//! halving the day count, re-estimating the day width from the events near
//! the head) as the population changes, keeping buckets short.
//!
//! [`CalendarQueue`] is a drop-in alternative to
//! [`EventQueue`](crate::EventQueue) with identical *stable* ordering
//! semantics (FIFO for equal timestamps) — verified against it by property
//! tests in `tests/prop_simcore.rs`. Criterion (`cargo bench -- queue`)
//! shows the calendar ~30% faster on steady-state *hold* operations
//! (pop-one/push-one over a standing population) but slower on
//! push-everything-then-drain bursts, and its `peek_time` is O(days)
//! versus the heap's O(1). The default [`crate::Simulation`] keeps the
//! binary heap because the experiment driver peeks the head every
//! iteration during warm-up; use the calendar directly for hold-dominated
//! custom drivers.

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

/// A stable calendar queue of timestamped events.
///
/// ```
/// use asyncinv_simcore::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::from_micros(5), "b");
/// q.push(SimTime::from_micros(5), "c");
/// q.push(SimTime::from_micros(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Day buckets, each sorted ascending by (time, seq).
    days: Vec<Vec<Entry<E>>>,
    /// Width of one day in nanoseconds (never zero).
    width: u64,
    /// Index of the day the cursor is on.
    cursor: usize,
    /// Start time of the cursor's day.
    day_start: u64,
    len: usize,
    seq: u64,
}

const MIN_DAYS: usize = 16;

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            days: (0..MIN_DAYS).map(|_| Vec::new()).collect(),
            width: 1_000, // 1 µs initial day width
            cursor: 0,
            day_start: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(&self, time: u64) -> usize {
        ((time / self.width) % self.days.len() as u64) as usize
    }

    /// Enqueues `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let t = time.as_nanos();
        let seq = self.seq;
        self.seq += 1;
        let day = self.day_of(t);
        let bucket = &mut self.days[day];
        // Insert keeping the bucket sorted by (time, seq). Most insertions
        // are at the tail (event times trend forward).
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (t, seq))
            .map_or(0, |p| p + 1);
        bucket.insert(pos, Entry { time: t, seq, event });
        self.len += 1;
        if self.len > 2 * self.days.len() {
            self.resize(self.days.len() * 2);
        }
        // A push earlier than the cursor's day must pull the cursor back.
        if t < self.day_start {
            self.cursor = self.day_of(t);
            self.day_start = t - t % self.width;
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let days = self.days.len();
        // Walk at most one full year from the cursor.
        for _ in 0..days {
            let day_end = self.day_start + self.width;
            let bucket = &mut self.days[self.cursor];
            if let Some(first) = bucket.first() {
                if first.time < day_end {
                    let e = bucket.remove(0);
                    self.len -= 1;
                    if self.len * 4 < self.days.len() && self.days.len() > MIN_DAYS {
                        self.resize((self.days.len() / 2).max(MIN_DAYS));
                        // Cursor state was rebuilt by resize.
                    }
                    return Some((SimTime::from_nanos(e.time), e.event));
                }
            }
            self.cursor = (self.cursor + 1) % days;
            self.day_start += self.width;
        }
        // Nothing within a whole year: jump the calendar to the global
        // minimum (sparse far-future population).
        let (min_day, min_time) = self
            .days
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, e.time)))
            .min_by_key(|&(_, t)| t)?;
        self.cursor = min_day;
        self.day_start = min_time - min_time % self.width;
        let e = self.days[min_day].remove(0);
        self.len -= 1;
        Some((SimTime::from_nanos(e.time), e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        // O(days): scan bucket heads. Used rarely by the driver.
        self.days
            .iter()
            .filter_map(|b| b.first())
            .map(|e| (e.time, e.seq))
            .min()
            .map(|(t, _)| SimTime::from_nanos(t))
    }

    /// Rebuilds the calendar with `new_days` buckets and a width estimated
    /// from the events nearest the head.
    fn resize(&mut self, new_days: usize) {
        let mut entries: Vec<Entry<E>> = self.days.drain(..).flatten().collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        // Width heuristic: ~3x the mean gap of the first few events, so a
        // day holds a handful of events.
        self.width = estimate_width(&entries);
        self.days = (0..new_days).map(|_| Vec::new()).collect();
        self.cursor = 0;
        self.day_start = entries.first().map_or(0, |e| e.time - e.time % self.width);
        if let Some(first) = entries.first() {
            self.cursor = ((first.time / self.width) % new_days as u64) as usize;
        }
        for e in entries {
            let day = ((e.time / self.width) % new_days as u64) as usize;
            self.days[day].push(e); // already globally sorted → per-bucket sorted
        }
    }
}

fn estimate_width<E>(sorted: &[Entry<E>]) -> u64 {
    let sample = sorted.len().min(32);
    if sample < 2 {
        return 1_000;
    }
    let span = sorted[sample - 1].time - sorted[0].time;
    let mean_gap = span / (sample as u64 - 1);
    (mean_gap * 3).max(1)
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &t in &[30u64, 10, 20, 25, 5, 40] {
            q.push(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, [5, 10, 20, 25, 30, 40]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_micros(3);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(10), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_micros(20), 'b');
        q.push(SimTime::from_micros(15), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pushes_earlier_than_cursor() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(100), 'z');
        assert_eq!(q.pop().unwrap().1, 'z'); // cursor jumps far forward
        q.push(SimTime::from_micros(1), 'a'); // much earlier than cursor
        q.push(SimTime::from_millis(200), 'y');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'y');
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::new();
        // Push enough to trigger growth, with colliding and sparse times.
        for i in 0..500u64 {
            q.push(SimTime::from_nanos((i * 7919) % 1000), i);
        }
        let mut last = None;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_secs(1000), 'a');
        q.push(SimTime::from_secs(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = CalendarQueue::new();
        for &t in &[7u64, 3, 9] {
            q.push(SimTime::from_micros(t), ());
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
