//! A calendar queue (R. Brown, CACM 1988): the classic O(1)-amortized
//! priority queue for discrete-event simulation.
//!
//! Events are hashed into day buckets by `time / width % days`; dequeue
//! walks the calendar from the current day, only accepting events that
//! fall within the current year. The structure resizes itself (doubling or
//! halving the day count, re-estimating the day width from the events near
//! the head) as the population changes, keeping buckets short.
//!
//! The queue maintains a cached head — the `(time, day)` of the earliest
//! pending event — across `push`/`pop`/`resize`, so [`CalendarQueue::peek_time`]
//! is O(1) like the binary heap's. The head search that used to run inside
//! `pop` now runs eagerly after each mutation; the amortized cost is
//! unchanged, only shifted one operation earlier.
//!
//! [`CalendarQueue`] is a drop-in alternative to
//! [`EventQueue`](crate::EventQueue) with identical *stable* ordering
//! semantics (FIFO for equal timestamps) — verified against it by property
//! tests in `tests/prop_simcore.rs`. Criterion (`cargo bench -- queue`)
//! shows the calendar faster on steady-state *hold* operations
//! (pop-one/push-one over a standing population) but slower on
//! push-everything-then-drain bursts. The default [`crate::Simulation`]
//! therefore uses the [`AdaptiveQueue`](crate::AdaptiveQueue) backend,
//! which starts on the heap and migrates to a calendar once the standing
//! population is large enough for the hold advantage to pay off.

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

/// A stable calendar queue of timestamped events.
///
/// ```
/// use asyncinv_simcore::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::from_micros(5), "b");
/// q.push(SimTime::from_micros(5), "c");
/// q.push(SimTime::from_micros(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Day buckets, each sorted ascending by (time, seq).
    days: Vec<Vec<Entry<E>>>,
    /// Width of one day in nanoseconds (never zero).
    width: u64,
    /// Index of the day the cursor is on.
    cursor: usize,
    /// Start time of the cursor's day.
    day_start: u64,
    len: usize,
    seq: u64,
    /// `(time, day)` of the earliest pending event; `Some` iff `len > 0`.
    head: Option<(u64, usize)>,
    /// Pushes since the last rebuild; gates overfull-bucket rebuilds so a
    /// rebuild's O(n log n) is always amortized over at least n pushes.
    pushes_since_resize: usize,
}

const MIN_DAYS: usize = 16;

/// A bucket longer than this (with the amortization gate open) means the
/// day width is stale for the current event distribution — e.g. a steady
/// population whose times compressed into a narrow window since the last
/// rebuild — and triggers a same-size rebuild to re-estimate the width.
const OVERFULL_BUCKET: usize = 32;

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            days: (0..MIN_DAYS).map(|_| Vec::new()).collect(),
            width: 1_000, // 1 µs initial day width
            cursor: 0,
            day_start: 0,
            len: 0,
            seq: 0,
            head: None,
            pushes_since_resize: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(&self, time: u64) -> usize {
        ((time / self.width) % self.days.len() as u64) as usize
    }

    /// Enqueues `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let t = time.as_nanos();
        let seq = self.seq;
        self.seq += 1;
        let day = self.day_of(t);
        let bucket = &mut self.days[day];
        // Insert keeping the bucket sorted by (time, seq). Most insertions
        // are at the tail (event times trend forward).
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (t, seq))
            .map_or(0, |p| p + 1);
        bucket.insert(pos, Entry { time: t, seq, event });
        let bucket_len = bucket.len();
        self.len += 1;
        self.pushes_since_resize += 1;
        if self.len > 2 * self.days.len() {
            self.resize(self.days.len() * 2); // rebuilds cursor + head
            return;
        }
        // Width staleness: a constant population never triggers the growth
        // resize above, but its event times can still drift into a window
        // far narrower than the current day width, piling everything into a
        // few buckets (O(bucket) inserts). Rebuild at the same day count to
        // re-estimate the width, amortized over at least `len` pushes.
        if bucket_len > OVERFULL_BUCKET && self.pushes_since_resize >= self.len {
            self.resize(self.days.len());
            return;
        }
        // A push earlier than the cursor's day must pull the cursor back.
        if t < self.day_start {
            self.cursor = self.day_of(t);
            self.day_start = t - t % self.width;
        }
        // Cached-head maintenance: a strictly earlier event becomes the new
        // head; an equal-time event keeps the incumbent (lower seq → FIFO).
        if self.head.map_or(true, |(ht, _)| t < ht) {
            self.head = Some((t, self.day_of(t)));
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, day) = self.head?;
        // The head day's first entry is the global minimum: within a bucket
        // entries are sorted by (time, seq), and the cached head tells us
        // which bucket holds the earliest time.
        let e = self.days[day].remove(0);
        debug_assert_eq!(e.time, t, "cached head out of sync with buckets");
        self.len -= 1;
        // Park the cursor on the popped event's day so the next head search
        // starts where the minimum was.
        self.cursor = day;
        self.day_start = t - t % self.width;
        if self.len * 4 < self.days.len() && self.days.len() > MIN_DAYS {
            self.resize((self.days.len() / 2).max(MIN_DAYS)); // rebuilds head
        } else {
            self.head = self.find_head();
        }
        Some((SimTime::from_nanos(e.time), e.event))
    }

    /// The timestamp of the earliest pending event, if any. O(1).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|(t, _)| SimTime::from_nanos(t))
    }

    /// Removes all pending events. Keeps the current width and capacity.
    pub fn clear(&mut self) {
        for bucket in &mut self.days {
            bucket.clear();
        }
        self.len = 0;
        self.head = None;
        // `seq` keeps counting so FIFO ordering stays stable across reuse.
    }

    /// Locates the earliest pending event, advancing the cursor to its day.
    ///
    /// This is the classic calendar-queue dequeue walk: at most one year
    /// from the cursor, then a global scan fallback for sparse far-future
    /// populations. Amortized O(1) under the resize invariants.
    fn find_head(&mut self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        let days = self.days.len();
        // Walk at most one full year from the cursor.
        for _ in 0..days {
            let day_end = self.day_start + self.width;
            if let Some(first) = self.days[self.cursor].first() {
                if first.time < day_end {
                    return Some((first.time, self.cursor));
                }
            }
            self.cursor = (self.cursor + 1) % days;
            self.day_start += self.width;
        }
        // Nothing within a whole year: jump the calendar to the global
        // minimum (sparse far-future population).
        let (min_day, min_time) = self
            .days
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, e.time)))
            .min_by_key(|&(_, t)| t)?;
        self.cursor = min_day;
        self.day_start = min_time - min_time % self.width;
        Some((min_time, min_day))
    }

    /// Rebuilds the calendar with `new_days` buckets and a width estimated
    /// from the events nearest the head.
    fn resize(&mut self, new_days: usize) {
        self.pushes_since_resize = 0;
        let mut entries: Vec<Entry<E>> = self.days.drain(..).flatten().collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        // Width heuristic: ~3x the mean gap of the first few events, so a
        // day holds a handful of events.
        self.width = estimate_width(&entries);
        self.days = (0..new_days).map(|_| Vec::new()).collect();
        self.cursor = 0;
        self.day_start = entries.first().map_or(0, |e| e.time - e.time % self.width);
        if let Some(first) = entries.first() {
            self.cursor = ((first.time / self.width) % new_days as u64) as usize;
        }
        self.head = entries
            .first()
            .map(|e| (e.time, ((e.time / self.width) % new_days as u64) as usize));
        for e in entries {
            let day = ((e.time / self.width) % new_days as u64) as usize;
            self.days[day].push(e); // already globally sorted → per-bucket sorted
        }
    }
}

fn estimate_width<E>(sorted: &[Entry<E>]) -> u64 {
    let sample = sorted.len().min(32);
    if sample < 2 {
        return 1_000;
    }
    let span = sorted[sample - 1].time - sorted[0].time;
    let mean_gap = span / (sample as u64 - 1);
    (mean_gap * 3).max(1)
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &t in &[30u64, 10, 20, 25, 5, 40] {
            q.push(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, [5, 10, 20, 25, 30, 40]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_micros(3);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(10), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_micros(20), 'b');
        q.push(SimTime::from_micros(15), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pushes_earlier_than_cursor() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(100), 'z');
        assert_eq!(q.pop().unwrap().1, 'z'); // cursor jumps far forward
        q.push(SimTime::from_micros(1), 'a'); // much earlier than cursor
        q.push(SimTime::from_millis(200), 'y');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'y');
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::new();
        // Push enough to trigger growth, with colliding and sparse times.
        for i in 0..500u64 {
            q.push(SimTime::from_nanos((i * 7919) % 1000), i);
        }
        let mut last = None;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_secs(1000), 'a');
        q.push(SimTime::from_secs(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = CalendarQueue::new();
        for &t in &[7u64, 3, 9] {
            q.push(SimTime::from_micros(t), ());
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn peek_tracks_head_through_mutations() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_time(), None);
        // Grow through several resizes, checking the cached head at every
        // step against a freshly computed minimum.
        let mut pending: Vec<u64> = Vec::new();
        for i in 0..300u64 {
            let t = (i * 6151) % 50_000;
            q.push(SimTime::from_nanos(t), i);
            pending.push(t);
            assert_eq!(
                q.peek_time().map(SimTime::as_nanos),
                pending.iter().copied().min()
            );
        }
        // Drain half, still checking.
        for _ in 0..150 {
            let (t, _) = q.pop().unwrap();
            let idx = pending
                .iter()
                .position(|&p| p == t.as_nanos())
                .expect("popped unknown time");
            pending.swap_remove(idx);
            assert_eq!(
                q.peek_time().map(SimTime::as_nanos),
                pending.iter().copied().min()
            );
        }
    }

    #[test]
    fn clear_resets_population() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(SimTime::from_micros(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        // Still usable (and still FIFO) after clear.
        let t = SimTime::from_micros(1);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
