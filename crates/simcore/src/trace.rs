//! A bounded ring-buffer trace for debugging simulations.
//!
//! Substrate models can record interesting transitions (thread handoffs,
//! write spins, classification flips) into a [`TraceBuffer`]; tests and the
//! experiment harnesses read them back to assert on *sequences* of behaviour
//! rather than just aggregate counters.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Subsystem tag, e.g. `"cpu"`, `"tcp"`, `"server"`.
    pub tag: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.tag, self.message)
    }
}

/// A bounded ring buffer of [`TraceEntry`] values.
///
/// When full, the oldest entries are discarded. Disabled buffers (capacity
/// zero) make `record` a no-op so production runs pay nothing.
///
/// ```
/// use asyncinv_simcore::{TraceBuffer, SimTime};
/// let mut tb = TraceBuffer::with_capacity(2);
/// tb.record(SimTime::ZERO, "cpu", "a".into());
/// tb.record(SimTime::ZERO, "cpu", "b".into());
/// tb.record(SimTime::ZERO, "cpu", "c".into());
/// let msgs: Vec<_> = tb.iter().map(|e| e.message.as_str()).collect();
/// assert_eq!(msgs, ["b", "c"]);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a disabled buffer (capacity zero; `record` is a no-op).
    pub fn disabled() -> Self {
        TraceBuffer::with_capacity(0)
    }

    /// Creates a buffer that retains the last `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// `true` when the buffer records entries.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an entry, evicting the oldest if at capacity.
    pub fn record(&mut self, time: SimTime, tag: &'static str, message: String) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { time, tag, message });
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops all retained entries (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut tb = TraceBuffer::disabled();
        tb.record(SimTime::ZERO, "x", "hello".into());
        assert!(tb.is_empty());
        assert!(!tb.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tb = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            tb.record(SimTime::from_nanos(i), "t", format!("m{i}"));
        }
        assert_eq!(tb.len(), 3);
        assert_eq!(tb.dropped(), 2);
        let msgs: Vec<_> = tb.iter().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, ["m2", "m3", "m4"]);
    }

    #[test]
    fn display_format() {
        let e = TraceEntry {
            time: SimTime::from_micros(3),
            tag: "cpu",
            message: "switch".into(),
        };
        assert_eq!(e.to_string(), "[t+3.000us cpu] switch");
    }

    #[test]
    fn clear_preserves_drop_count() {
        let mut tb = TraceBuffer::with_capacity(1);
        tb.record(SimTime::ZERO, "t", "a".into());
        tb.record(SimTime::ZERO, "t", "b".into());
        tb.clear();
        assert!(tb.is_empty());
        assert_eq!(tb.dropped(), 1);
    }
}
