//! # asyncinv-simcore — discrete-event simulation kernel
//!
//! The foundation of the `asyncinv` reproduction of *"Improving Asynchronous
//! Invocation Performance in Client-server Systems"* (ICDCS 2018). Every
//! higher-level substrate (the CPU/thread scheduler, the TCP send-path model,
//! the server architectures, the closed-loop workload generators) is driven by
//! the deterministic event loop defined here.
//!
//! The kernel is deliberately small and dependency-free:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] / [`CalendarQueue`] / [`AdaptiveQueue`] — stable
//!   priority queues of timestamped events (ties broken by insertion order
//!   so runs are reproducible), unified by the [`QueueBackend`] trait.
//! * [`Simulation`] — clock + pluggable queue backend + scheduling API;
//!   defaults to the adaptive backend.
//! * [`SimRng`] — a seedable xoshiro256++ PRNG so experiments are
//!   deterministic without depending on platform entropy.
//!
//! # Example
//!
//! ```
//! use asyncinv_simcore::{Simulation, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sim = Simulation::new();
//! sim.schedule(SimDuration::from_micros(5), Ev::Ping);
//! sim.schedule(SimDuration::from_micros(2), Ev::Pong);
//!
//! let (t1, e1) = sim.next_event().unwrap();
//! assert_eq!(e1, Ev::Pong);
//! assert_eq!(t1.as_nanos(), 2_000);
//! let (_, e2) = sim.next_event().unwrap();
//! assert_eq!(e2, Ev::Ping);
//! assert!(sim.next_event().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod backend;
mod calendar;
mod ladder;
mod queue;
mod rng;
mod sim;
mod threads;
mod time;

pub use arena::{Arena, ArenaIdx, ReqSlot, ReqTable};
pub use backend::{
    AdaptiveQueue, BackendKind, QueueBackend, DEFAULT_SWITCH_DOWN, DEFAULT_SWITCH_UP,
};
pub use calendar::CalendarQueue;
pub use ladder::LadderQueue;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use sim::{CalendarSimulation, HeapSimulation, LadderSimulation, Simulation};
pub use threads::{configured_threads, THREADS_ENV};
pub use time::{SimDuration, SimTime};
