//! The event queue: a stable min-priority queue keyed by [`SimTime`].
//!
//! Events that share a timestamp are delivered in insertion order. This is
//! load-bearing for reproducibility: many simulation steps (e.g. a burst
//! completing and a new request arriving) legitimately coincide, and the
//! substrate models must observe them in a deterministic order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A stable min-priority queue of timestamped events.
///
/// ```
/// use asyncinv_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), "b");
/// q.push(SimTime::from_micros(5), "c");
/// q.push(SimTime::from_micros(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest entry.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Enqueues `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (pt, e) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(e, i);
        }
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push(t, 'a');
        q.push(t, 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(t, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..5).map(|i| (SimTime::from_nanos(i), i as u8)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
