//! Arena-allocated, struct-of-arrays state for large in-flight populations.
//!
//! At 100k+ concurrent requests, a `Vec<Option<BigStruct>>` of in-flight
//! state wastes cache on cold fields and the `Option` discriminants. The
//! two containers here keep large populations hot:
//!
//! * [`Arena<T>`] — a slab with a LIFO free list: O(1) insert/remove,
//!   stable [`ArenaIdx`] handles, deterministic slot reuse (the free list
//!   is a stack, so reuse order depends only on the call sequence — never
//!   on pointer values or hashing).
//! * [`ReqTable`] — a struct-of-arrays table of in-flight request state
//!   keyed by dense user index, one parallel column per field, used by
//!   the parallel fleet driver (`asyncinv-fleet`). Columns are plain
//!   `Vec`s of scalars so a scan over one field (e.g. every live user's
//!   primary shard) touches only that column.
//!
//! Both are simulation state, so both are fully deterministic: no
//! hashing, no addresses, no ambient entropy.

use crate::time::SimTime;

/// Handle into an [`Arena`]. Plain index — the arena never shrinks, so
/// handles stay valid until `remove` (slots are reused after removal;
/// holding a stale `ArenaIdx` after removing it is a logic error the
/// caller must avoid, as with any slab).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArenaIdx(pub u32);

/// A slab allocator with a LIFO free list and stable indices.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> ArenaIdx {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            debug_assert!(self.slots[i as usize].is_none());
            self.slots[i as usize] = Some(value);
            ArenaIdx(i)
        } else {
            let i = u32::try_from(self.slots.len()).expect("arena capacity exceeds u32");
            self.slots.push(Some(value));
            ArenaIdx(i)
        }
    }

    /// Removes and returns the value at `idx` (None if the slot is empty).
    pub fn remove(&mut self, idx: ArenaIdx) -> Option<T> {
        let v = self.slots.get_mut(idx.0 as usize)?.take()?;
        self.free.push(idx.0);
        self.live -= 1;
        Some(v)
    }

    /// Shared access to the value at `idx`.
    pub fn get(&self, idx: ArenaIdx) -> Option<&T> {
        self.slots.get(idx.0 as usize)?.as_ref()
    }

    /// Mutable access to the value at `idx`.
    pub fn get_mut(&mut self, idx: ArenaIdx) -> Option<&mut T> {
        self.slots.get_mut(idx.0 as usize)?.as_mut()
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Drops every value and resets the free list.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
    }
}

/// One user's in-flight request, as a row view over [`ReqTable`].
///
/// `primary` / `hedge` are `(shard, epoch)` pairs: the shard an attempt
/// was routed to and the attempt epoch that distinguishes it from stale
/// events of earlier attempts. `response_bytes` / `class` carry the
/// request spec with the row so a rerouted attempt never has to read
/// possibly-stale per-shard connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqSlot {
    /// First-send time of the logical request (fixed across retries).
    pub sent_at: SimTime,
    /// Send time of the newest attempt.
    pub attempt_sent: SimTime,
    /// Attempt number (0 = first send).
    pub attempt: u32,
    /// Primary attempt: `(shard, epoch)`.
    pub primary: (u32, u32),
    /// Hedge attempt, if one is outstanding: `(shard, epoch)`.
    pub hedge: Option<(u32, u32)>,
    /// Response size of the request spec.
    pub response_bytes: usize,
    /// Workload-mix class index of the request spec.
    pub class: usize,
}

const NO_HEDGE: u32 = u32::MAX;

/// Struct-of-arrays table of in-flight requests, keyed by user index.
///
/// Equivalent to `Vec<Option<ReqSlot>>` but with each field in its own
/// column and occupancy in a separate byte vector, so the hot columns
/// (primary shard/epoch, consulted on every delivery and timeout) stay
/// dense in cache at 100k+ users.
#[derive(Debug, Clone)]
pub struct ReqTable {
    live: Vec<bool>,
    sent_at: Vec<SimTime>,
    attempt_sent: Vec<SimTime>,
    attempt: Vec<u32>,
    primary_shard: Vec<u32>,
    primary_epoch: Vec<u32>,
    hedge_shard: Vec<u32>,
    hedge_epoch: Vec<u32>,
    response_bytes: Vec<usize>,
    class: Vec<usize>,
    live_count: usize,
}

impl ReqTable {
    /// A table for `users` dense user indices, all rows empty.
    pub fn new(users: usize) -> Self {
        ReqTable {
            live: vec![false; users],
            sent_at: vec![SimTime::ZERO; users],
            attempt_sent: vec![SimTime::ZERO; users],
            attempt: vec![0; users],
            primary_shard: vec![0; users],
            primary_epoch: vec![0; users],
            hedge_shard: vec![NO_HEDGE; users],
            hedge_epoch: vec![0; users],
            response_bytes: vec![0; users],
            class: vec![0; users],
            live_count: 0,
        }
    }

    /// Writes `slot` into row `user` (live or not).
    pub fn set(&mut self, user: usize, slot: ReqSlot) {
        if !self.live[user] {
            self.live[user] = true;
            self.live_count += 1;
        }
        self.sent_at[user] = slot.sent_at;
        self.attempt_sent[user] = slot.attempt_sent;
        self.attempt[user] = slot.attempt;
        self.primary_shard[user] = slot.primary.0;
        self.primary_epoch[user] = slot.primary.1;
        match slot.hedge {
            Some((s, e)) => {
                self.hedge_shard[user] = s;
                self.hedge_epoch[user] = e;
            }
            None => {
                self.hedge_shard[user] = NO_HEDGE;
                self.hedge_epoch[user] = 0;
            }
        }
        self.response_bytes[user] = slot.response_bytes;
        self.class[user] = slot.class;
    }

    /// The row for `user`, if live.
    pub fn get(&self, user: usize) -> Option<ReqSlot> {
        if !self.live[user] {
            return None;
        }
        Some(ReqSlot {
            sent_at: self.sent_at[user],
            attempt_sent: self.attempt_sent[user],
            attempt: self.attempt[user],
            primary: (self.primary_shard[user], self.primary_epoch[user]),
            hedge: if self.hedge_shard[user] == NO_HEDGE {
                None
            } else {
                Some((self.hedge_shard[user], self.hedge_epoch[user]))
            },
            response_bytes: self.response_bytes[user],
            class: self.class[user],
        })
    }

    /// Removes and returns the row for `user`, if live.
    pub fn take(&mut self, user: usize) -> Option<ReqSlot> {
        let slot = self.get(user)?;
        self.live[user] = false;
        self.live_count -= 1;
        Some(slot)
    }

    /// `true` when row `user` is live.
    pub fn contains(&self, user: usize) -> bool {
        self.live[user]
    }

    /// Primary `(shard, epoch)` of a live row (hot path: avoids
    /// materializing the whole row on every delivery).
    pub fn primary(&self, user: usize) -> Option<(u32, u32)> {
        if self.live[user] {
            Some((self.primary_shard[user], self.primary_epoch[user]))
        } else {
            None
        }
    }

    /// Hedge `(shard, epoch)` of a live row with a hedge outstanding.
    pub fn hedge(&self, user: usize) -> Option<(u32, u32)> {
        if self.live[user] && self.hedge_shard[user] != NO_HEDGE {
            Some((self.hedge_shard[user], self.hedge_epoch[user]))
        } else {
            None
        }
    }

    /// Records a hedge attempt on a live row.
    pub fn set_hedge(&mut self, user: usize, shard: u32, epoch: u32) {
        debug_assert!(self.live[user]);
        self.hedge_shard[user] = shard;
        self.hedge_epoch[user] = epoch;
    }

    /// Clears the hedge attempt on a live row.
    pub fn clear_hedge(&mut self, user: usize) {
        self.hedge_shard[user] = NO_HEDGE;
        self.hedge_epoch[user] = 0;
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_reuses_slots_lifo() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!((x, y), (ArenaIdx(0), ArenaIdx(1)));
        assert_eq!(a.remove(x), Some("x"));
        assert_eq!(a.remove(y), Some("y"));
        assert_eq!(a.remove(y), None, "double-free is a no-op");
        // LIFO: the most recently freed slot (y's) is reused first.
        assert_eq!(a.insert("z"), ArenaIdx(1));
        assert_eq!(a.insert("w"), ArenaIdx(0));
        assert_eq!(a.insert("v"), ArenaIdx(2));
        assert_eq!(a.len(), 3);
        assert_eq!(a.slots(), 3);
        assert_eq!(a.get(ArenaIdx(1)), Some(&"z"));
        *a.get_mut(ArenaIdx(1)).unwrap() = "zz";
        assert_eq!(a.get(ArenaIdx(1)), Some(&"zz"));
    }

    #[test]
    fn req_table_round_trips_rows() {
        let mut t = ReqTable::new(4);
        assert!(t.is_empty());
        let slot = ReqSlot {
            sent_at: SimTime::from_micros(3),
            attempt_sent: SimTime::from_micros(9),
            attempt: 2,
            primary: (5, 7),
            hedge: None,
            response_bytes: 10 * 1024,
            class: 1,
        };
        t.set(2, slot);
        assert_eq!(t.len(), 1);
        assert!(t.contains(2) && !t.contains(0));
        assert_eq!(t.get(2), Some(slot));
        assert_eq!(t.primary(2), Some((5, 7)));
        assert_eq!(t.hedge(2), None);
        t.set_hedge(2, 3, 8);
        assert_eq!(t.hedge(2), Some((3, 8)));
        t.clear_hedge(2);
        assert_eq!(t.hedge(2), None);
        assert_eq!(t.take(2), Some(slot));
        assert_eq!(t.take(2), None);
        assert!(t.is_empty());
    }

    #[test]
    fn req_table_overwrite_keeps_count() {
        let mut t = ReqTable::new(2);
        let mk = |attempt| ReqSlot {
            sent_at: SimTime::ZERO,
            attempt_sent: SimTime::ZERO,
            attempt,
            primary: (0, 0),
            hedge: Some((1, attempt)),
            response_bytes: 1,
            class: 0,
        };
        t.set(0, mk(1));
        t.set(0, mk(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0).unwrap().attempt, 2);
        assert_eq!(t.get(0).unwrap().hedge, Some((1, 2)));
    }
}
