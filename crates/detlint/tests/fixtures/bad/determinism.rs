//! Known-bad fixture: every determinism lint fires, and each offending
//! line carries a tilde marker naming the expected diagnostic. This file
//! is never compiled — the harness in `../../fixtures.rs` feeds it to the
//! analyzer as text.

use std::collections::HashMap; //~ hash-iter
use std::collections::HashSet; //~ hash-iter

fn timings() {
    let t0 = std::time::Instant::now(); //~ wall-clock
    let wall = SystemTime::now(); //~ wall-clock
    drop((t0, wall));
}

fn entropy() {
    let mut rng = rand::thread_rng(); //~ ambient-rng
    let seeded = SmallRng::from_entropy(); //~ ambient-rng
    let os = OsRng; //~ ambient-rng
    let byte: u8 = rand::random(); //~ ambient-rng
    drop((rng, seeded, os, byte));
}

fn rogue_threads() {
    std::thread::spawn(|| {}); //~ thread-spawn
    std::thread::scope(|s| drop(s)); //~ thread-spawn
}

fn unstable_total(weights: HashMap<u32, f64>) -> f64 { //~ hash-iter
    drop(weights);
    let total: f64 = HashSet::from([1.0f64]).iter().sum(); //~ hash-iter unordered-float-reduce
    total
}
