//! Known-bad fixture: broken allow annotations are violations themselves,
//! and an annotation cannot rescue a violation on a different line.

// detlint::allow(wall-clock) //~ bad-allow
// detlint::allow(wall-clock, reason = "") //~ bad-allow
// detlint::allow(no-such-lint, reason = "typo in the lint name") //~ bad-allow
// detlint::allow(hash-iter, reason = "nothing here touches a hash container") //~ unused-allow
fn annotated() {}

// detlint::allow(wall-clock, reason = "this targets the fn line, not the body") //~ unused-allow
fn mistargeted() {
    let t = std::time::Instant::now(); //~ wall-clock
    drop(t);
}
