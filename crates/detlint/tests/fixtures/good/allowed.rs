//! Known-good fixture: every determinism lint fires here, and every site
//! carries a justified allow annotation — the analyzer must report zero
//! violations while retaining each finding as `allowed`.

use std::collections::HashMap; // detlint::allow(hash-iter, reason = "fixture: trailing annotation form")

// detlint::allow-file(thread-spawn, reason = "fixture: file-scoped annotation form")

fn timing() {
    // detlint::allow(wall-clock, reason = "fixture: standalone annotation form")
    let t0 = std::time::Instant::now();
    drop(t0);
}

fn entropy() {
    let r = rand::thread_rng(); // detlint::allow(ambient-rng, reason = "fixture: a seeded Rng replaces this in real code")
    drop(r);
}

fn rogue() {
    std::thread::spawn(|| {});
    std::thread::scope(|s| drop(s));
}

fn reduce(pairs: [(u32, f64); 3]) -> f64 {
    // detlint::allow(hash-iter, reason = "fixture: hash container feeding a float reduction")
    // detlint::allow(unordered-float-reduce, reason = "fixture: both lints on one line need two annotations")
    let total: f64 = HashMap::from(pairs).values().sum();
    total
}
