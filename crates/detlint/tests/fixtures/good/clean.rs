//! Known-good fixture: constructs that superficially resemble hazards but
//! are deterministic. The lexer must stay truthful about comments, strings
//! and lookalike identifiers — nothing in this file may fire.

use std::collections::BTreeMap;

/// Doc comments may mention HashMap, HashSet, Instant::now() and
/// thread_rng() freely; prose is not code.
fn documented() {}

fn strings() -> String {
    let plain = "HashMap::new() SystemTime::now() rand::random()";
    let raw = r#"thread_rng " from_entropy OsRng"#;
    let escaped = "std::thread::spawn(\"not code\")";
    format!("{plain}{raw}{escaped}")
}

fn lookalikes(instant: &Clock, stopwatch: &Stopwatch) -> u64 {
    let a = instant.now; // a field named `now`, not Instant::now()
    let b = stopwatch.now(); // a method named `now` on a non-clock type
    let spawned = spawn_worker("not an OS thread");
    thread::sleep(Duration::from_millis(1)); // sleep is not spawn
    a + b + spawned
}

fn ordered_reduce(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum() // ordered container: reduction order is stable
}

fn lifetimes_vs_chars<'a>(s: &'a str) -> (char, &'a str) {
    ('x', s)
}
