//! Fixture-based end-to-end tests of the determinism lints and the allow
//! machinery. Each file under `fixtures/bad/` annotates its violations
//! with `//~ lint-name` markers (several space-separated names when one
//! line fires more than one lint); the analyzer must produce exactly the
//! marked set. Files under `fixtures/good/` must produce zero violations
//! — `allowed.rs` while firing (and suppressing) every lint, `clean.rs`
//! without firing at all.

use std::path::Path;

use detlint::diag::apply_allows;
use detlint::lints::{lint_names, lint_source, LintOptions};
use detlint::Diagnostic;

fn analyze(name: &str) -> (String, Vec<Diagnostic>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let (raw, lexed) = lint_source(name, &src, &LintOptions::default());
    let diags = apply_allows(name, &lexed.comments, &lexed.tokens, &lint_names(), raw);
    (src, diags)
}

/// Collects the `//~ lint-name` expectations: `(line, lint)` pairs.
fn expected(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for lint in line[pos + 3..].split_whitespace() {
                out.push((i as u32 + 1, lint.to_string()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn bad_fixtures_fire_exactly_the_marked_diagnostics() {
    for name in ["bad/determinism.rs", "bad/bad_allows.rs"] {
        let (src, diags) = analyze(name);
        let want = expected(&src);
        assert!(!want.is_empty(), "{name}: fixture carries no markers");
        let mut got: Vec<(u32, String)> = diags
            .iter()
            .filter(|d| d.allowed.is_none())
            .map(|d| (d.line, d.lint.clone()))
            .collect();
        got.sort();
        assert_eq!(got, want, "{name}: diagnostics do not match the markers");
    }
}

#[test]
fn clean_fixture_produces_no_diagnostics_at_all() {
    let (_, diags) = analyze("good/clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allowed_fixture_fires_every_lint_and_suppresses_every_site() {
    let (_, diags) = analyze("good/allowed.rs");
    let violations: Vec<_> = diags.iter().filter(|d| d.allowed.is_none()).collect();
    assert!(violations.is_empty(), "{violations:?}");
    for (lint, _) in detlint::LINTS {
        assert!(
            diags.iter().any(|d| &d.lint == lint && d.allowed.is_some()),
            "{lint} should fire and be allowlisted in the fixture"
        );
    }
}
