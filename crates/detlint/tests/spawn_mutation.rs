//! Mutation tests for the `thread-spawn` lint over the parallel fleet
//! driver. The driver's worker pool is the one sanctioned spawn site in
//! the fleet crate, allowlisted by an in-file `detlint::allow` annotation
//! with a written justification — **not** by `spawn_sanctioned`, so the
//! waiver is per-site: deleting the annotation, or adding any other
//! spawn to the driver, must fail the gate.

use std::path::{Path, PathBuf};

use detlint::diag::apply_allows;
use detlint::lints::{lint_names, lint_source, LintOptions};
use detlint::{run_check, Diagnostic, WorkspaceConfig};

const DRIVER: &str = "crates/fleet/src/parallel.rs";

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn driver_source() -> String {
    std::fs::read_to_string(workspace_root().join(DRIVER)).expect("fleet driver readable")
}

/// Lints a (possibly mutated) copy of the driver source exactly as the
/// workspace pass would: fleet files are *not* in `spawn_sanctioned`, so
/// only annotations can waive `thread-spawn`.
fn lint_driver(src: &str) -> Vec<Diagnostic> {
    let (raw, lexed) = lint_source(DRIVER, src, &LintOptions::default());
    apply_allows(DRIVER, &lexed.comments, &lexed.tokens, &lint_names(), raw)
}

/// The fleet crate is in the workspace lint scope, and the driver's pool
/// spawn is visible in the report as an *allowlisted* finding — it must
/// never silently vanish from the artifact.
#[test]
fn fleet_driver_is_scanned_and_its_pool_spawn_is_allowlisted() {
    let cfg = WorkspaceConfig::repo_default();
    assert!(
        cfg.lint_dirs.iter().any(|d| d.ends_with("fleet/src")),
        "crates/fleet/src missing from the lint scope"
    );
    assert!(
        !cfg.spawn_sanctioned.iter().any(|f| f.ends_with("parallel.rs")),
        "the driver must be waived per-site by annotation, not file-sanctioned"
    );
    let report = run_check(&workspace_root(), &cfg);
    assert!(report.clean(), "\n{}", report.render_text());
    assert!(
        report
            .allowed()
            .any(|d| d.file == DRIVER && d.lint == "thread-spawn"),
        "the driver's annotated worker-pool spawn should appear as allowlisted"
    );
}

/// Deleting the annotation (the mutation a careless refactor performs)
/// turns the same spawn into a hard violation.
#[test]
fn stripping_the_annotation_makes_the_pool_spawn_fire() {
    let orig = driver_source();
    let mutated: String = orig
        .lines()
        .filter(|l| !l.contains("detlint::allow(thread-spawn"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(orig, mutated, "the driver lost its allow annotation?");
    let diags = lint_driver(&mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "thread-spawn" && d.allowed.is_none()),
        "unannotated pool spawn must fire: {diags:?}"
    );
}

/// A *new* spawn added elsewhere in the driver fires even though the
/// pool's annotation is still present: the waiver covers one line, not
/// the module.
#[test]
fn a_second_unannotated_spawn_in_the_driver_fires() {
    let orig = driver_source();
    let mutated = format!(
        "{orig}\nfn rogue() {{ std::thread::spawn(|| ()); }}\n"
    );
    let diags = lint_driver(&mutated);
    let unallowed: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "thread-spawn" && d.allowed.is_none())
        .collect();
    assert_eq!(
        unallowed.len(),
        1,
        "exactly the rogue spawn must fire: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "thread-spawn" && d.allowed.is_some()),
        "the annotated pool spawn must stay allowlisted"
    );
}

/// An annotation without a reason is not a waiver: replacing the written
/// justification with an empty one is itself a violation *and* leaves
/// the spawn unallowed.
#[test]
fn an_empty_reason_is_rejected_and_suppresses_nothing() {
    let orig = driver_source();
    let needle = orig
        .lines()
        .find(|l| l.contains("detlint::allow(thread-spawn"))
        .expect("driver carries the annotation")
        .trim_start()
        .to_string();
    let mutated = orig.replace(
        &needle,
        "// detlint::allow(thread-spawn, reason = \"\")",
    );
    assert_ne!(orig, mutated);
    let diags = lint_driver(&mutated);
    assert!(diags.iter().any(|d| d.lint == "bad-allow"), "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "thread-spawn" && d.allowed.is_none()),
        "a reasonless annotation must not waive the spawn: {diags:?}"
    );
}
