//! Mutation tests for the trace-schema coverage analyzer: deleting a
//! `TraceKind` match arm from any exporter surface or from the audit
//! disposition must fail the analysis, and a wildcard arm is flagged even
//! though it would satisfy rustc's exhaustiveness check. The real
//! workspace files are copied into a scratch tree and mutated there.

use std::fs;
use std::path::{Path, PathBuf};

use detlint::coverage::{analyze, CoverageConfig};

const FILES: &[&str] = &[
    "crates/obs/src/event.rs",
    "crates/obs/src/export.rs",
    "crates/obs/src/audit.rs",
    "crates/obs/src/critical_path.rs",
    "crates/obs/src/span_export.rs",
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/obs/src")).unwrap();
    let root = workspace_root();
    for f in FILES {
        fs::copy(root.join(f), dir.join(f)).unwrap();
    }
    dir
}

/// The files holding `TraceKind` surfaces — the targets of the event-schema
/// arm-deletion mutations (`span_export.rs` carries only `Phase` surfaces).
const TRACE_SURFACE_FILES: &[&str] = &[
    "crates/obs/src/event.rs",
    "crates/obs/src/export.rs",
    "crates/obs/src/audit.rs",
    "crates/obs/src/critical_path.rs",
];

/// The files holding `Phase` surfaces.
const PHASE_SURFACE_FILES: &[&str] = &[
    "crates/obs/src/critical_path.rs",
    "crates/obs/src/span_export.rs",
];

fn config() -> CoverageConfig {
    CoverageConfig {
        // The scratch tree holds only the obs files, no engine crates.
        emitter_dirs: Vec::new(),
        ..CoverageConfig::repo_default()
    }
}

fn span_config() -> CoverageConfig {
    // `span_schema` has no emitter dirs to begin with.
    CoverageConfig::span_schema()
}

/// Removes every match arm / array entry referencing the given
/// `TraceKind::` path, tracking brace depth so the audit's multi-line
/// arms are removed whole.
fn delete_kind(src: &str, path: &str) -> String {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut skipping = false;
    for line in src.lines() {
        let net = line.matches('{').count() as i32 - line.matches('}').count() as i32;
        if skipping {
            depth += net;
            if depth <= 0 {
                skipping = false;
            }
            continue;
        }
        if line.contains(path) {
            if net > 0 {
                skipping = true;
                depth = net;
            }
            continue;
        }
        out.push(line);
    }
    out.join("\n") + "\n"
}

#[test]
fn baseline_scratch_tree_passes() {
    let dir = scratch("covmut-baseline");
    let (diags, summary) = analyze(&dir, &config());
    assert!(diags.is_empty(), "{diags:?}");
    assert!(summary.variants.contains(&"Retry".to_string()));
}

#[test]
fn deleting_an_arm_from_any_surface_fails_the_analyzer() {
    for (i, file) in TRACE_SURFACE_FILES.iter().enumerate() {
        let dir = scratch(&format!("covmut-arm-{i}"));
        let path = dir.join(file);
        let orig = fs::read_to_string(&path).unwrap();
        let mutated = delete_kind(&orig, "TraceKind::Retry");
        assert_ne!(orig, mutated, "{file}: mutation must change the file");
        fs::write(&path, mutated).unwrap();
        let (diags, _) = analyze(&dir, &config());
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "trace-coverage" && d.message.contains("Retry")),
            "{file}: analyzer missed the deleted arm: {diags:?}"
        );
    }
}

/// The fleet trace kinds are schema like any other: deleting the
/// `ShardRoute` arm from every surface must fail the analyzer, same as
/// the engine kinds.
#[test]
fn deleting_a_fleet_arm_from_any_surface_fails_the_analyzer() {
    for (i, file) in TRACE_SURFACE_FILES.iter().enumerate() {
        let dir = scratch(&format!("covmut-fleet-arm-{i}"));
        let path = dir.join(file);
        let orig = fs::read_to_string(&path).unwrap();
        let mutated = delete_kind(&orig, "TraceKind::ShardRoute");
        assert_ne!(orig, mutated, "{file}: mutation must change the file");
        fs::write(&path, mutated).unwrap();
        let (diags, _) = analyze(&dir, &config());
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "trace-coverage" && d.message.contains("ShardRoute")),
            "{file}: analyzer missed the deleted fleet arm: {diags:?}"
        );
    }
}

/// A wildcard arm swallowing the fleet kinds (`ShardRoute`, `Hedge`,
/// `HedgeCancel`, `ShardRetry`) satisfies rustc but must fail the
/// analyzer: it is exactly how the next fleet trace code would silently
/// skip the exporter.
#[test]
fn wildcard_over_fleet_kinds_is_flagged() {
    let dir = scratch("covmut-fleet-wildcard");
    let path = dir.join("crates/obs/src/export.rs");
    let orig = fs::read_to_string(&path).unwrap();
    let mutated = orig
        .replace("TraceKind::ShardRoute => Some(\"shard\"),", "")
        .replace("TraceKind::Hedge => Some(\"hedge_delay_ns\"),", "")
        .replace("TraceKind::HedgeCancel => Some(\"shard\"),", "")
        .replace(
            "TraceKind::ShardRetry => Some(\"shard\"),",
            "_ => Some(\"shard\"),",
        );
    assert_ne!(orig, mutated, "the jsonl_arg_key fleet arms moved?");
    fs::write(&path, mutated).unwrap();
    let (diags, _) = analyze(&dir, &config());
    assert!(
        diags.iter().any(|d| d.message.contains("wildcard")),
        "{diags:?}"
    );
    for kind in ["ShardRoute", "Hedge", "HedgeCancel"] {
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains(&format!("TraceKind::{kind}"))),
            "missing-arm diagnostic for {kind} not raised: {diags:?}"
        );
    }
}

/// With the fleet crate absent from the emitter directories, the fleet
/// kinds become dead trace codes: nobody emits them. This is the check
/// that forces `crates/fleet/src` to stay in `emitter_dirs`.
#[test]
fn fleet_kinds_are_dead_without_the_fleet_emitter() {
    let dir = scratch("covmut-fleet-dead");
    // Emit from the obs crate's own sources only: the engine kinds are
    // referenced there (exporters double as references), and so are the
    // fleet kinds — so instead check against an empty emitter dir.
    fs::create_dir_all(dir.join("empty")).unwrap();
    let cfg = CoverageConfig {
        emitter_dirs: vec!["empty".into()],
        ..CoverageConfig::repo_default()
    };
    let (_, summary) = analyze(&dir, &cfg);
    for kind in ["ShardRoute", "Hedge", "HedgeCancel", "ShardRetry"] {
        assert!(
            summary.dead.contains(&kind.to_string()),
            "{kind} should be dead with no emitters: {:?}",
            summary.dead
        );
    }
}

/// The service-graph trace kinds are schema like any other: deleting the
/// `DagDispatch` arm from every surface must fail the analyzer.
#[test]
fn deleting_a_dag_arm_from_any_surface_fails_the_analyzer() {
    for (i, file) in TRACE_SURFACE_FILES.iter().enumerate() {
        let dir = scratch(&format!("covmut-dag-arm-{i}"));
        let path = dir.join(file);
        let orig = fs::read_to_string(&path).unwrap();
        let mutated = delete_kind(&orig, "TraceKind::DagDispatch");
        assert_ne!(orig, mutated, "{file}: mutation must change the file");
        fs::write(&path, mutated).unwrap();
        let (diags, _) = analyze(&dir, &config());
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "trace-coverage" && d.message.contains("DagDispatch")),
            "{file}: analyzer missed the deleted dag arm: {diags:?}"
        );
    }
}

/// With the dag crate absent from the emitter directories, the DAG kinds
/// become dead trace codes: this is the check that forces
/// `crates/dag/src` to stay in `emitter_dirs`.
#[test]
fn dag_kinds_are_dead_without_the_dag_emitter() {
    let dir = scratch("covmut-dag-dead");
    fs::create_dir_all(dir.join("empty")).unwrap();
    let cfg = CoverageConfig {
        emitter_dirs: vec!["empty".into()],
        ..CoverageConfig::repo_default()
    };
    let (_, summary) = analyze(&dir, &cfg);
    for kind in ["DagDispatch", "DagJoin", "DagEdgeRetry"] {
        assert!(
            summary.dead.contains(&kind.to_string()),
            "{kind} should be dead with no emitters: {:?}",
            summary.dead
        );
    }
}

/// The span layer's `Phase` enum is schema too: deleting a phase arm from
/// the name map, the `ALL` enumeration or the span exporter's color map
/// must fail the analyzer, exactly like a `TraceKind` arm.
#[test]
fn deleting_a_phase_arm_from_any_surface_fails_the_analyzer() {
    for (i, file) in PHASE_SURFACE_FILES.iter().enumerate() {
        let dir = scratch(&format!("covmut-phase-arm-{i}"));
        let path = dir.join(file);
        let orig = fs::read_to_string(&path).unwrap();
        let mutated = delete_kind(&orig, "Phase::HedgeWait");
        assert_ne!(orig, mutated, "{file}: mutation must change the file");
        fs::write(&path, mutated).unwrap();
        let (diags, _) = analyze(&dir, &span_config());
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "trace-coverage" && d.message.contains("HedgeWait")),
            "{file}: analyzer missed the deleted phase arm: {diags:?}"
        );
    }
}

/// A wildcard arm swallowing a phase in the span exporter satisfies rustc
/// but must fail the analyzer: it is exactly how the next phase would
/// silently render uncolored.
#[test]
fn replacing_a_phase_arm_with_a_wildcard_is_flagged() {
    let dir = scratch("covmut-phase-wildcard");
    let path = dir.join("crates/obs/src/span_export.rs");
    let orig = fs::read_to_string(&path).unwrap();
    let mutated = orig.replace("Phase::DeadWait => \"grey\",", "_ => \"grey\",");
    assert_ne!(orig, mutated, "the phase_color DeadWait arm moved?");
    fs::write(&path, mutated).unwrap();
    let (diags, _) = analyze(&dir, &span_config());
    assert!(
        diags.iter().any(|d| d.message.contains("wildcard")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("DeadWait")),
        "{diags:?}"
    );
}

/// The baseline scratch tree passes the span schema too.
#[test]
fn baseline_scratch_tree_passes_the_span_schema() {
    let dir = scratch("covmut-phase-baseline");
    let (diags, summary) = analyze(&dir, &span_config());
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(summary.enum_name, "Phase");
    assert!(summary.variants.contains(&"HedgeWait".to_string()));
    assert_eq!(summary.variants.len(), 9, "Phase variant count drifted");
}

#[test]
fn replacing_an_arm_with_a_wildcard_is_flagged() {
    let dir = scratch("covmut-wildcard");
    let path = dir.join("crates/obs/src/export.rs");
    let orig = fs::read_to_string(&path).unwrap();
    let mutated = orig.replace(
        "TraceKind::Retry => Some(\"backoff_ns\"),",
        "_ => Some(\"backoff_ns\"),",
    );
    assert_ne!(orig, mutated, "the jsonl_arg_key Retry arm moved?");
    fs::write(&path, mutated).unwrap();
    let (diags, _) = analyze(&dir, &config());
    assert!(
        diags.iter().any(|d| d.message.contains("wildcard")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("Retry")),
        "{diags:?}"
    );
}
