//! Mutation tests for the counter-conservation family: duplicating an
//! increment site, deleting the sole increment site of a ring counter,
//! deleting an audit disposition arm, stripping a written waiver,
//! dropping a registry emission from one fleet driver, un-summing a
//! per-shard counter, injecting shared mutable state into the parallel
//! driver, and removing a crate root's `#![forbid(unsafe_code)]` must
//! each fail the pass. The real workspace files are copied into a
//! scratch tree and mutated there, PR-4 style.

use std::fs;
use std::path::{Path, PathBuf};

use detlint::conservation::{self, ConservationConfig};
use detlint::{diag, lexer, Diagnostic};

/// Every file the repo-default conservation contract touches: counter
/// definitions, increment scopes, audit surfaces, and the crate roots
/// under the forbid-unsafe meta-check.
const FILES: &[&str] = &[
    "crates/metrics/src/summary.rs",
    "crates/servers/src/engine.rs",
    "crates/fleet/src/cluster.rs",
    "crates/fleet/src/parallel.rs",
    "crates/obs/src/audit.rs",
    "crates/uring/src/lib.rs",
    "crates/simcore/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/tcp/src/lib.rs",
    "crates/cpu/src/lib.rs",
    "crates/servers/src/lib.rs",
    "crates/workload/src/lib.rs",
    "crates/fault/src/lib.rs",
    "crates/metrics/src/lib.rs",
    "crates/obs/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/fleet/src/lib.rs",
    "crates/dag/src/lib.rs",
    "crates/dag/src/summary.rs",
    "crates/dag/src/driver.rs",
    "src/lib.rs",
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = fs::remove_dir_all(&dir);
    let root = workspace_root();
    for f in FILES {
        let dst = dir.join(f);
        fs::create_dir_all(dst.parent().unwrap()).unwrap();
        fs::copy(root.join(f), dst).unwrap();
    }
    dir
}

/// Runs the conservation family over the scratch tree and applies each
/// file's `detlint::allow` annotations exactly like `detlint::run_check`
/// does, returning only the unallowed findings — the ones that fail the
/// build.
fn violations(dir: &Path) -> Vec<Diagnostic> {
    let known = conservation::lint_names();
    let raw = conservation::analyze(dir, &ConservationConfig::repo_default());
    let mut by_file: std::collections::BTreeMap<String, Vec<Diagnostic>> = Default::default();
    for d in raw {
        by_file.entry(d.file.clone()).or_default().push(d);
    }
    let mut out = Vec::new();
    for (rel, found) in by_file {
        match fs::read_to_string(dir.join(&rel)).ok().map(|s| lexer::lex(&s)) {
            Some(lx) => out.extend(diag::apply_allows(&rel, &lx.comments, &lx.tokens, &known, found)),
            None => out.extend(found),
        }
    }
    out.retain(|d| d.allowed.is_none());
    out
}

fn mutate(dir: &Path, file: &str, f: impl FnOnce(&str) -> String) {
    let path = dir.join(file);
    let orig = fs::read_to_string(&path).unwrap();
    let mutated = f(&orig);
    assert_ne!(orig, mutated, "{file}: mutation must change the file");
    fs::write(&path, mutated).unwrap();
}

/// Removes every match arm / block referencing `path`, tracking brace
/// depth so multi-line arms are removed whole (shared with the coverage
/// mutation tests' approach).
fn delete_kind(src: &str, path: &str) -> String {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut skipping = false;
    for line in src.lines() {
        let net = line.matches('{').count() as i32 - line.matches('}').count() as i32;
        if skipping {
            depth += net;
            if depth <= 0 {
                skipping = false;
            }
            continue;
        }
        if line.contains(path) {
            if net > 0 {
                skipping = true;
                depth = net;
            }
            continue;
        }
        out.push(line);
    }
    out.join("\n") + "\n"
}

#[test]
fn baseline_scratch_tree_passes() {
    let dir = scratch("consmut-baseline");
    let v = violations(&dir);
    assert!(v.is_empty(), "{v:?}");
}

/// A second textual increment site for a counter that already has one —
/// the classic double-count refactoring accident — is flagged.
#[test]
fn duplicating_an_increment_site_fails() {
    let dir = scratch("consmut-dup");
    mutate(&dir, "crates/fleet/src/parallel.rs", |src| {
        format!("{src}\nfn consmut_extra() {{ let mut retries = 0u64; retries += 1; let _ = retries; }}\n")
    });
    let v = violations(&dir);
    assert!(
        v.iter()
            .any(|d| d.lint == "counter-dup-increment" && d.message.contains("retries")),
        "{v:?}"
    );
}

/// Deleting the sole increment site of a ring counter leaves a defined
/// field that reports a constant lie — `counter-dead`.
#[test]
fn deleting_the_sole_increment_site_fails() {
    let dir = scratch("consmut-dead");
    mutate(&dir, "crates/uring/src/lib.rs", |src| {
        src.replace("self.counters.sq_full += 1;", "")
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "counter-dead" && d.message.contains("sq_full")),
        "{v:?}"
    );
}

/// Deleting the audit disposition arm that reads a counter (here
/// `TraceKind::Retry`, which reconciles `s.retries`) makes the field
/// unaudited.
#[test]
fn deleting_an_audit_arm_fails() {
    let dir = scratch("consmut-unaudited");
    mutate(&dir, "crates/obs/src/audit.rs", |src| {
        delete_kind(src, "TraceKind::Retry =>")
    });
    let v = violations(&dir);
    assert!(
        v.iter()
            .any(|d| d.lint == "counter-unaudited" && d.message.contains("retries")),
        "{v:?}"
    );
}

/// A waiver is load-bearing: stripping the written
/// `detlint::allow(counter-dead, ...)` from a deliberately-dead field
/// resurfaces the violation (and the conservation contract with it).
#[test]
fn stripping_a_waiver_fails() {
    let dir = scratch("consmut-waiver");
    mutate(&dir, "crates/metrics/src/summary.rs", |src| {
        src.lines()
            .filter(|l| {
                !(l.contains("detlint::allow(counter-dead")
                    && l.contains("abandoned snapshot deltas"))
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "counter-dead" && d.message.contains("abandoned")),
        "{v:?}"
    );
}

/// The DAG per-tier counters are under the same contract: deleting the
/// sole increment site of `orphans` (a counter with no trace-event
/// mirror — it is only closed by the reply-conservation identity) leaves
/// a dead field.
#[test]
fn deleting_a_dag_increment_site_fails() {
    let dir = scratch("consmut-dag-dead");
    mutate(&dir, "crates/dag/src/driver.rs", |src| {
        src.replace("self.counters[cnode].orphans += 1;", "")
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "counter-dead" && d.message.contains("orphans")),
        "{v:?}"
    );
}

/// A second dispatch-count site in the DAG driver — the double-count a
/// refactor of `dispatch_child` could introduce — is flagged.
#[test]
fn duplicating_a_dag_increment_site_fails() {
    let dir = scratch("consmut-dag-dup");
    mutate(&dir, "crates/dag/src/driver.rs", |src| {
        format!(
            "{src}\nfn consmut_extra(t: &mut crate::summary::TierCounters) {{ t.dispatches += 1; }}\n"
        )
    });
    let v = violations(&dir);
    assert!(
        v.iter()
            .any(|d| d.lint == "counter-dup-increment" && d.message.contains("dispatches")),
        "{v:?}"
    );
}

/// Deleting `dag_audit`'s read of a per-tier counter makes the field
/// unaudited: every `TierCounters` field must be reconciled against the
/// trace or a conservation identity.
#[test]
fn deleting_a_dag_audit_read_fails() {
    let dir = scratch("consmut-dag-unaudited");
    mutate(&dir, "crates/dag/src/summary.rs", |src| {
        src.replace("sums.served += t.served;", "")
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "counter-unaudited" && d.message.contains("served")),
        "{v:?}"
    );
}

/// One driver publishing a registry counter the other does not breaks
/// the bit-identity of registry snapshots — `registry-parity`.
#[test]
fn dropping_a_registry_emission_fails() {
    let dir = scratch("consmut-parity");
    mutate(&dir, "crates/fleet/src/parallel.rs", |src| {
        src.replace("obs.counter(\"retries\", retries - retries_snap);", "")
    });
    let v = violations(&dir);
    assert!(
        v.iter()
            .any(|d| d.lint == "registry-parity" && d.message.contains("\"retries\"")),
        "{v:?}"
    );
}

/// A per-shard counter one fleet driver folds into its summary and the
/// other silently zeroes is flagged by the `counter-unsummed` check.
#[test]
fn unsumming_a_per_shard_counter_fails() {
    let dir = scratch("consmut-unsummed");
    mutate(&dir, "crates/fleet/src/parallel.rs", |src| {
        src.replace("shed_dropped: d.shed_dropped,", "shed_dropped: 0,")
    });
    let v = violations(&dir);
    assert!(
        v.iter()
            .any(|d| d.lint == "counter-unsummed" && d.message.contains("shed_dropped")),
        "{v:?}"
    );
}

/// Shared mutable state inside the schedule-independent parallel driver
/// — the exact bug class the schedule explorer exists to catch — is
/// denied statically.
#[test]
fn injecting_shared_state_fails() {
    let dir = scratch("consmut-shared");
    mutate(&dir, "crates/fleet/src/parallel.rs", |src| {
        format!("{src}\nfn consmut_shared() {{ let _m = std::sync::Mutex::new(0u64); }}\n")
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "shared-state" && d.message.contains("Mutex")),
        "{v:?}"
    );
}

/// Removing `#![forbid(unsafe_code)]` from any sim crate root fails the
/// meta-check.
#[test]
fn removing_forbid_unsafe_fails() {
    let dir = scratch("consmut-unsafe");
    mutate(&dir, "crates/fleet/src/lib.rs", |src| {
        src.replace("#![forbid(unsafe_code)]\n", "")
    });
    let v = violations(&dir);
    assert!(
        v.iter().any(|d| d.lint == "forbid-unsafe" && d.file.ends_with("fleet/src/lib.rs")),
        "{v:?}"
    );
}
