//! The workspace must pass its own static-analysis gate: this is the test
//! that keeps `cargo test` equivalent to `cargo run -p detlint -- check`.

use std::path::Path;

use detlint::{run_check, WorkspaceConfig};

#[test]
fn workspace_is_clean_under_its_own_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_check(&root, &WorkspaceConfig::repo_default());
    assert!(report.clean(), "\n{}", report.render_text());
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — scope misconfigured?",
        report.files_scanned
    );
    let cov = report.coverage.as_ref().expect("coverage analysis ran");
    assert!(cov.variants.len() >= 16, "TraceKind lost variants?");
    assert_eq!(cov.surfaces.len(), 5, "a coverage surface was dropped");
    assert!(cov.dead.is_empty(), "dead trace codes: {:?}", cov.dead);
    // The justified waivers (bench wall-clocks, the cross-thread
    // determinism test) must stay visible in the report, not vanish.
    assert!(report.allowed().count() >= 2);
}
