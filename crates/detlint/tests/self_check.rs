//! The workspace must pass its own static-analysis gate: this is the test
//! that keeps `cargo test` equivalent to `cargo run -p detlint -- check`.

use std::path::Path;

use detlint::{run_check, WorkspaceConfig};

#[test]
fn workspace_is_clean_under_its_own_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_check(&root, &WorkspaceConfig::repo_default());
    assert!(report.clean(), "\n{}", report.render_text());
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — scope misconfigured?",
        report.files_scanned
    );
    assert_eq!(report.coverage.len(), 2, "a coverage schema was dropped");
    let cov = &report.coverage[0];
    assert_eq!(cov.enum_name, "TraceKind");
    assert!(cov.variants.len() >= 16, "TraceKind lost variants?");
    assert_eq!(cov.surfaces.len(), 6, "a TraceKind coverage surface was dropped");
    assert!(cov.dead.is_empty(), "dead trace codes: {:?}", cov.dead);
    let span = &report.coverage[1];
    assert_eq!(span.enum_name, "Phase");
    assert!(span.variants.len() >= 9, "Phase lost variants?");
    assert_eq!(span.surfaces.len(), 3, "a Phase coverage surface was dropped");
    // The justified waivers (bench wall-clocks, the cross-thread
    // determinism test) must stay visible in the report, not vanish.
    assert!(report.allowed().count() >= 2);
}
