//! Determinism lints over the simulation crates.
//!
//! Everything this repository reports rests on seeded runs being bitwise
//! deterministic (the trace audit, the empty-fault-plan identity test and
//! the cross-thread property tests all assert exact equality). These lints
//! deny the constructs that silently break that property:
//!
//! | lint | denies | deterministic alternative |
//! |------|--------|---------------------------|
//! | `hash-iter` | `HashMap` / `HashSet` (iteration order varies per process) | `BTreeMap` / `BTreeSet` / index-keyed `Vec` |
//! | `wall-clock` | `Instant::now`, `SystemTime::now` | `SimTime` / the simulation clock |
//! | `ambient-rng` | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` | seeded `asyncinv_simcore::Rng` |
//! | `thread-spawn` | `thread::spawn` / `scope` / `Builder` outside the sanctioned runner | `asyncinv::runner::parallel_map` |
//! | `unordered-float-reduce` | float `sum`/`product`/`fold` in a statement touching a hash container | reduce over a sorted/ordered sequence |
//!
//! Each site can be waived with
//! `// detlint::allow(<lint>, reason = "...")` (see [`crate::diag`]).

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token};

/// The determinism lints: `(name, what it denies)`. These are the names
/// valid inside `detlint::allow(...)`.
pub const LINTS: &[(&str, &str)] = &[
    (
        "hash-iter",
        "HashMap/HashSet: iteration order is nondeterministic across processes",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime::now: wall-clock reads differ between runs",
    ),
    (
        "ambient-rng",
        "thread_rng/from_entropy/OsRng: platform entropy breaks seeded replay",
    ),
    (
        "thread-spawn",
        "thread::spawn/scope/Builder outside the sanctioned runner module",
    ),
    (
        "unordered-float-reduce",
        "float reduction over an unordered container: FP addition is not associative",
    ),
];

/// The names from [`LINTS`].
pub fn lint_names() -> Vec<&'static str> {
    LINTS.iter().map(|(n, _)| *n).collect()
}

/// Per-file lint options.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// `true` for the sanctioned thread-runner module: `thread-spawn` is
    /// waived there (it is the one place OS threads may be created, and
    /// its output-ordering contract is property-tested).
    pub spawn_sanctioned: bool,
}

/// `true` if `tokens[i..]` is `:: ident` for one of `names`.
fn path_seg(tokens: &[Token], i: usize, names: &[&str]) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens
            .get(i + 2)
            .and_then(Token::ident)
            .is_some_and(|id| names.contains(&id))
}

/// Runs the determinism lints over one file's source. Allow annotations
/// are *not* applied here — callers feed the result through
/// [`crate::diag::apply_allows`].
pub fn lint_source(
    file: &str,
    source: &str,
    opts: &LintOptions,
) -> (Vec<Diagnostic>, crate::lexer::Lexed) {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    // Statement-local state for unordered-float-reduce: did the current
    // statement mention a hash container?
    let mut stmt_hash = false;

    for (i, t) in toks.iter().enumerate() {
        match &t.text {
            crate::lexer::TokenText::Punct(c) if matches!(c, ';' | '{' | '}') => {
                stmt_hash = false;
            }
            crate::lexer::TokenText::Ident(id) => match id.as_str() {
                "HashMap" | "HashSet" => {
                    stmt_hash = true;
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "hash-iter",
                        format!(
                            "{id} iterates in nondeterministic order; use BTree{} or an index-keyed Vec",
                            if id == "HashMap" { "Map" } else { "Set" }
                        ),
                    ));
                }
                "Instant" | "SystemTime" if path_seg(toks, i + 1, &["now"]) => {
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "wall-clock",
                        format!("{id}::now() reads the wall clock; simulations must use SimTime"),
                    ));
                }
                "thread_rng" | "from_entropy" | "OsRng" => {
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "ambient-rng",
                        format!("{id} draws platform entropy; use a seeded asyncinv_simcore::Rng"),
                    ));
                }
                "rand" if path_seg(toks, i + 1, &["random"]) => {
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "ambient-rng",
                        "rand::random draws platform entropy; use a seeded asyncinv_simcore::Rng",
                    ));
                }
                "thread"
                    if !opts.spawn_sanctioned
                        && path_seg(toks, i + 1, &["spawn", "scope", "Builder"]) =>
                {
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "thread-spawn",
                        "OS threads outside the sanctioned runner module; \
                         use asyncinv::runner::parallel_map",
                    ));
                }
                "sum" | "product" | "fold"
                    if stmt_hash
                        && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.')) =>
                {
                    out.push(Diagnostic::new(
                        file,
                        t.line,
                        "unordered-float-reduce",
                        format!(
                            ".{id}() in a statement using a hash container: float reduction \
                             order would be nondeterministic; sort or use an ordered container"
                        ),
                    ));
                }
                _ => {}
            },
            _ => {}
        }
    }
    (out, lexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = lint_source("t.rs", src, &LintOptions::default());
        diags.into_iter().map(|d| (d.lint, d.line)).collect()
    }

    #[test]
    fn each_lint_fires_on_its_pattern() {
        assert_eq!(
            lints_of("use std::collections::HashMap;"),
            [("hash-iter".to_string(), 1)]
        );
        assert_eq!(
            lints_of("let t = std::time::Instant::now();"),
            [("wall-clock".to_string(), 1)]
        );
        assert_eq!(
            lints_of("let t = SystemTime::now();"),
            [("wall-clock".to_string(), 1)]
        );
        assert_eq!(
            lints_of("let r = rand::thread_rng();"),
            [("ambient-rng".to_string(), 1)]
        );
        assert_eq!(
            lints_of("let h = std::thread::spawn(f);"),
            [("thread-spawn".to_string(), 1)]
        );
        assert_eq!(
            lints_of("std::thread::scope(|s| {});"),
            [("thread-spawn".to_string(), 1)]
        );
    }

    #[test]
    fn float_reduce_needs_a_hash_container_in_the_statement() {
        let src = "let s: f64 = m.values().sum();";
        assert!(lints_of(src).is_empty(), "no hash container in sight");
        let src = "let s: f64 = HashMap::from(p).values().sum();";
        let got = lints_of(src);
        assert!(got.contains(&("hash-iter".to_string(), 1)));
        assert!(got.contains(&("unordered-float-reduce".to_string(), 1)));
    }

    #[test]
    fn comments_strings_and_unrelated_idents_do_not_fire() {
        assert!(lints_of("// HashMap::new() and Instant::now()").is_empty());
        assert!(lints_of("let s = \"HashMap thread_rng\";").is_empty());
        assert!(lints_of("let spawned = spawn_thread(\"t\");").is_empty());
        assert!(lints_of("let x = instant.now;").is_empty());
        assert!(lints_of("thread::sleep(d);").is_empty());
    }

    #[test]
    fn sanctioned_module_waives_thread_spawn_only() {
        let opts = LintOptions {
            spawn_sanctioned: true,
        };
        let (d, _) = lint_source("runner.rs", "std::thread::scope(|s| {});", &opts);
        assert!(d.is_empty());
        let (d, _) = lint_source("runner.rs", "let t = Instant::now();", &opts);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn statement_boundaries_reset_the_hash_context() {
        let src = "let m = HashMap::new();\nlet s: f64 = v.iter().sum();";
        let got = lints_of(src);
        assert_eq!(got, [("hash-iter".to_string(), 1)]);
    }
}
