//! Diagnostics and the `detlint::allow` escape hatch.
//!
//! An allow annotation is a comment of the form
//!
//! ```text
//! // detlint::allow(wall-clock, reason = "self-benchmark measures wall time")
//! ```
//!
//! A standalone annotation (nothing but whitespace before it on its line)
//! suppresses matching diagnostics on the next code line; a trailing
//! annotation suppresses them on its own line. `detlint::allow-file(...)`
//! suppresses a lint for the whole file. The `reason` string is mandatory
//! and must be non-empty: an allowlist entry without a written
//! justification is itself a violation (`bad-allow`), and an annotation
//! that suppresses nothing is reported as `unused-allow` so stale entries
//! cannot accumulate.

use crate::lexer::{Comment, Token};

/// One finding. `allowed` carries the justification when an allow
/// annotation suppressed it (suppressed findings are retained in the
/// machine-readable report; only *unallowed* ones fail the build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (e.g. `hash-iter`, `trace-coverage`).
    pub lint: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// The allow annotation's reason, when suppressed.
    pub allowed: Option<String>,
}

impl Diagnostic {
    pub fn new(file: &str, line: u32, lint: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            lint: lint.to_string(),
            message: message.into(),
            allowed: None,
        }
    }
}

/// A parsed allow annotation.
#[derive(Debug)]
struct Allow {
    lint: String,
    reason: String,
    /// Line the annotation suppresses (`None` = whole file).
    target: Option<u32>,
    /// Line the annotation itself is written on.
    line: u32,
    used: bool,
}

/// The marker every annotation starts with.
const MARKER: &str = "detlint::allow";

/// Parses `name, reason = "..."` from the text between the parentheses.
fn parse_args(args: &str) -> Result<(String, String), String> {
    let (name, rest) = match args.split_once(',') {
        Some((n, r)) => (n.trim(), r.trim()),
        None => return Err("missing `, reason = \"...\"`".into()),
    };
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("bad lint name {name:?}"));
    }
    let rest = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or("expected `reason = \"...\"`")?;
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.split_once('"'))
        .map(|(inner, _)| inner)
        .ok_or("reason must be a double-quoted string")?;
    if inner.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((name.to_string(), inner.to_string()))
}

/// Applies allow annotations from `comments` to `raw` diagnostics.
///
/// `known_lints` is the set of suppressible lint names (a `bad-allow` is
/// reported for annotations naming anything else). `tokens` is used to
/// resolve which code line a standalone annotation targets.
pub fn apply_allows(
    file: &str,
    comments: &[Comment],
    tokens: &[Token],
    known_lints: &[&str],
    raw: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut allows: Vec<Allow> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();

    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[pos + MARKER.len()..];
        let (file_scope, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let parsed = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .ok_or("missing parentheses".to_string())
            .and_then(|(args, _)| parse_args(args));
        match parsed {
            Err(e) => out.push(Diagnostic::new(
                file,
                c.line,
                "bad-allow",
                format!("malformed detlint::allow annotation: {e}"),
            )),
            Ok((lint, reason)) => {
                if !known_lints.contains(&lint.as_str()) {
                    out.push(Diagnostic::new(
                        file,
                        c.line,
                        "bad-allow",
                        format!("detlint::allow names unknown lint {lint:?}"),
                    ));
                    continue;
                }
                let target = if file_scope {
                    None
                } else if c.standalone {
                    // The next line holding any code token.
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .or(Some(u32::MAX))
                } else {
                    Some(c.line)
                };
                allows.push(Allow {
                    lint,
                    reason,
                    target,
                    line: c.line,
                    used: false,
                });
            }
        }
    }

    for mut d in raw {
        let hit = allows
            .iter_mut()
            .find(|a| a.lint == d.lint && (a.target.is_none() || a.target == Some(d.line)));
        if let Some(a) = hit {
            a.used = true;
            d.allowed = Some(a.reason.clone());
        }
        out.push(d);
    }

    for a in &allows {
        if !a.used {
            out.push(Diagnostic::new(
                file,
                a.line,
                "unused-allow",
                format!(
                    "detlint::allow({}) suppresses nothing — remove it or move it next to the violation",
                    a.lint
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const KNOWN: &[&str] = &["wall-clock", "hash-iter"];

    fn check(src: &str, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let lexed = lex(src);
        apply_allows("f.rs", &lexed.comments, &lexed.tokens, KNOWN, raw)
    }

    #[test]
    fn standalone_annotation_covers_next_code_line() {
        let src = "\n// detlint::allow(wall-clock, reason = \"bench\")\nlet t = Instant::now();\n";
        let out = check(src, vec![Diagnostic::new("f.rs", 3, "wall-clock", "x")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].allowed.as_deref(), Some("bench"));
    }

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let src = "let t = Instant::now(); // detlint::allow(wall-clock, reason = \"bench\")\n";
        let out = check(src, vec![Diagnostic::new("f.rs", 1, "wall-clock", "x")]);
        assert_eq!(out[0].allowed.as_deref(), Some("bench"));
    }

    #[test]
    fn annotation_does_not_leak_past_its_target_line() {
        let src = "// detlint::allow(wall-clock, reason = \"one\")\nfirst();\nsecond();\n";
        let out = check(
            src,
            vec![
                Diagnostic::new("f.rs", 2, "wall-clock", "x"),
                Diagnostic::new("f.rs", 3, "wall-clock", "x"),
            ],
        );
        assert_eq!(out[0].allowed.as_deref(), Some("one"));
        assert!(out[1].allowed.is_none());
    }

    #[test]
    fn file_scope_annotation_covers_everything() {
        let src = "// detlint::allow-file(hash-iter, reason = \"scratch\")\na();\nb();\n";
        let out = check(
            src,
            vec![
                Diagnostic::new("f.rs", 2, "hash-iter", "x"),
                Diagnostic::new("f.rs", 3, "hash-iter", "x"),
            ],
        );
        assert!(out.iter().all(|d| d.allowed.is_some()));
    }

    #[test]
    fn missing_reason_unknown_lint_and_unused_are_reported() {
        let src = "\
// detlint::allow(wall-clock)
// detlint::allow(wall-clock, reason = \"\")
// detlint::allow(no-such-lint, reason = \"r\")
// detlint::allow(hash-iter, reason = \"never fires\")
code();
";
        let out = check(src, vec![]);
        let lints: Vec<&str> = out.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(
            lints,
            ["bad-allow", "bad-allow", "bad-allow", "unused-allow"]
        );
    }

    #[test]
    fn wrong_lint_name_does_not_suppress() {
        let src = "// detlint::allow(hash-iter, reason = \"r\")\nlet t = Instant::now();\n";
        let out = check(src, vec![Diagnostic::new("f.rs", 2, "wall-clock", "x")]);
        let wall: Vec<_> = out.iter().filter(|d| d.lint == "wall-clock").collect();
        assert!(wall[0].allowed.is_none());
        assert!(out.iter().any(|d| d.lint == "unused-allow"));
    }
}
