//! Trace-schema coverage: every `TraceKind` variant must be handled by
//! every exporter surface and dispositioned by the audit, and must be
//! emitted by at least one engine.
//!
//! The schema enum is parsed from source; each configured *surface* (a
//! function or const that is supposed to handle every kind) is then
//! checked for a `TraceKind::Variant` reference per variant. Wildcard
//! match arms (`_ =>`) inside a surface are themselves violations: a
//! wildcard is exactly how a newly added trace code silently escapes an
//! exporter or the audit. Finally, every variant must be *emitted*
//! somewhere in the engine crates — a variant nobody emits is a dead
//! trace code and the counters it promises can rot unnoticed.
//!
//! Deleting a match arm from any surface therefore fails this analyzer
//! even though the token-level pass never type-checks anything.

use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenText};

/// What kind of item a surface is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceItem {
    /// A free function or method: the body of `fn <name>`.
    Fn,
    /// A const array: the `[...]` initializer of `const <name>`.
    Const,
}

/// One place that must handle every enum variant.
#[derive(Debug, Clone)]
pub struct Surface {
    /// File the item lives in, relative to the workspace root.
    pub file: PathBuf,
    /// Item kind.
    pub item: SurfaceItem,
    /// Item name (`name`, `chrome_cat`, `ALL`, ...).
    pub name: String,
    /// Human-readable label for reports.
    pub label: String,
}

impl Surface {
    pub fn func(file: &str, name: &str, label: &str) -> Self {
        Surface {
            file: file.into(),
            item: SurfaceItem::Fn,
            name: name.into(),
            label: label.into(),
        }
    }

    pub fn array(file: &str, name: &str, label: &str) -> Self {
        Surface {
            file: file.into(),
            item: SurfaceItem::Const,
            name: name.into(),
            label: label.into(),
        }
    }
}

/// Configuration of the coverage analysis.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// File declaring the schema enum.
    pub enum_file: PathBuf,
    /// The enum's name (`TraceKind`).
    pub enum_name: String,
    /// Surfaces that must reference every variant.
    pub surfaces: Vec<Surface>,
    /// Directories whose union must *emit* (reference) every variant;
    /// empty disables the dead-code check.
    pub emitter_dirs: Vec<PathBuf>,
}

impl CoverageConfig {
    /// The real workspace schema: the `TraceKind` enum, both exporters,
    /// the audit disposition, and the engine crates as emitters.
    pub fn repo_default() -> Self {
        CoverageConfig {
            enum_file: "crates/obs/src/event.rs".into(),
            enum_name: "TraceKind".into(),
            surfaces: vec![
                Surface::func(
                    "crates/obs/src/event.rs",
                    "name",
                    "canonical kind names (TraceKind::name)",
                ),
                Surface::array(
                    "crates/obs/src/event.rs",
                    "ALL",
                    "kind enumeration (TraceKind::ALL)",
                ),
                Surface::func(
                    "crates/obs/src/export.rs",
                    "chrome_cat",
                    "Chrome-trace exporter categories (export::chrome_cat)",
                ),
                Surface::func(
                    "crates/obs/src/export.rs",
                    "jsonl_arg_key",
                    "JSONL exporter arg keys (export::jsonl_arg_key)",
                ),
                Surface::func(
                    "crates/obs/src/audit.rs",
                    "disposition",
                    "trace-audit reconciliation (audit::disposition)",
                ),
                Surface::func(
                    "crates/obs/src/critical_path.rs",
                    "classify",
                    "critical-path phase classification (critical_path::classify)",
                ),
            ],
            emitter_dirs: vec![
                "crates/servers/src".into(),
                "crates/cpu/src".into(),
                "crates/tcp/src".into(),
                "crates/workload/src".into(),
                "crates/fault/src".into(),
                "crates/fleet/src".into(),
                "crates/dag/src".into(),
                "crates/core/src".into(),
            ],
        }
    }

    /// The span layer's phase schema: every [`Phase`] variant must be
    /// named, enumerated, and colored by the span exporter. `Phase` is
    /// assigned only inside `crates/obs` (the span layer is a pure fold
    /// over the trace), so there is no cross-crate emitter check.
    pub fn span_schema() -> Self {
        CoverageConfig {
            enum_file: "crates/obs/src/critical_path.rs".into(),
            enum_name: "Phase".into(),
            surfaces: vec![
                Surface::func(
                    "crates/obs/src/critical_path.rs",
                    "name",
                    "canonical phase names (Phase::name)",
                ),
                Surface::array(
                    "crates/obs/src/critical_path.rs",
                    "ALL",
                    "phase enumeration (Phase::ALL)",
                ),
                Surface::func(
                    "crates/obs/src/span_export.rs",
                    "phase_color",
                    "span exporter colors (span_export::phase_color)",
                ),
            ],
            emitter_dirs: Vec::new(),
        }
    }
}

/// Per-surface outcome, for the machine-readable report.
#[derive(Debug, Clone)]
pub struct SurfaceCoverage {
    pub label: String,
    pub file: String,
    /// Variants the surface does not reference.
    pub missing: Vec<String>,
    /// Referenced names that are not variants (stale arms).
    pub stale: Vec<String>,
    /// Lines of wildcard `_ =>` arms inside the surface.
    pub wildcards: Vec<u32>,
}

/// Full coverage outcome for one schema enum.
#[derive(Debug, Clone, Default)]
pub struct CoverageSummary {
    /// The schema enum this summary covers (`TraceKind`, `Phase`).
    pub enum_name: String,
    pub variants: Vec<String>,
    pub surfaces: Vec<SurfaceCoverage>,
    /// Variants no emitter directory references.
    pub dead: Vec<String>,
}

/// Extracts the variant names of `enum <name> { ... }` from a token
/// stream. Only unit variants are supported (the trace schema is `Copy`).
fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) && tokens[i + 2].is_punct('{')
        {
            let mut variants = Vec::new();
            let mut depth = 1usize;
            let mut expect = true;
            let mut j = i + 3;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].text {
                    TokenText::Punct('{') | TokenText::Punct('(') | TokenText::Punct('[') => {
                        depth += 1
                    }
                    TokenText::Punct('}') | TokenText::Punct(')') | TokenText::Punct(']') => {
                        depth -= 1
                    }
                    TokenText::Punct(',') if depth == 1 => expect = true,
                    TokenText::Punct('#') => {} // attribute on a variant
                    TokenText::Ident(id) if depth == 1 && expect => {
                        variants.push(id.clone());
                        expect = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some(variants);
        }
        i += 1;
    }
    None
}

/// Finds the token range of a surface item's body: `fn name ... { .. }`
/// or `const name ... = [ .. ]`. Returns `(start, end, decl_line)` with
/// `start..end` excluding the delimiters. Shared with the conservation
/// pass, which locates audit/epilogue function bodies the same way.
pub(crate) fn item_body(
    tokens: &[Token],
    item: SurfaceItem,
    name: &str,
) -> Option<(usize, usize, u32)> {
    let (kw, open, close) = match item {
        SurfaceItem::Fn => ("fn", '{', '}'),
        SurfaceItem::Const => ("const", '[', ']'),
    };
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident(kw) && tokens[i + 1].is_ident(name) {
            let decl_line = tokens[i].line;
            let mut j = i + 2;
            if item == SurfaceItem::Const {
                // Skip the type annotation (`: [TraceKind; COUNT]`) to the
                // `=` sign, tracking delimiter depth so array types don't
                // masquerade as the initializer.
                let mut depth = 0usize;
                while j < tokens.len() {
                    match &tokens[j].text {
                        TokenText::Punct('[') | TokenText::Punct('(') | TokenText::Punct('{') => {
                            depth += 1
                        }
                        TokenText::Punct(']') | TokenText::Punct(')') | TokenText::Punct('}') => {
                            depth = depth.saturating_sub(1)
                        }
                        TokenText::Punct('=') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            // First opening delimiter after the declaration (or the `=`);
            // parameter lists and return types in the configured surfaces
            // contain no stray `{`.
            while j < tokens.len() && !tokens[j].is_punct(open) {
                j += 1;
            }
            if j == tokens.len() {
                return None;
            }
            let start = j + 1;
            let mut depth = 1usize;
            let mut k = start;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct(open) {
                    depth += 1;
                } else if tokens[k].is_punct(close) {
                    depth -= 1;
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1), decl_line));
        }
        i += 1;
    }
    None
}

/// All `Enum::Variant` references in `tokens[range]`, plus wildcard-arm
/// lines (`_ =>`).
fn collect_refs(tokens: &[Token], enum_name: &str) -> (Vec<(String, u32)>, Vec<u32>) {
    let mut refs = Vec::new();
    let mut wildcards = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident(enum_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = tokens.get(i + 3).and_then(Token::ident) {
                refs.push((v.to_string(), t.line));
            }
        }
        if t.is_ident("_")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('>'))
        {
            wildcards.push(t.line);
        }
    }
    (refs, wildcards)
}

fn rel(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

/// Runs the coverage analysis rooted at `root`. I/O failures (a missing
/// surface file, an unparsable enum) are reported as diagnostics rather
/// than errors: a schema the analyzer cannot see is a failed check.
pub fn analyze(root: &Path, cfg: &CoverageConfig) -> (Vec<Diagnostic>, CoverageSummary) {
    let mut diags = Vec::new();
    let mut summary = CoverageSummary {
        enum_name: cfg.enum_name.clone(),
        ..CoverageSummary::default()
    };

    let enum_rel = rel(&cfg.enum_file);
    let enum_src = match std::fs::read_to_string(root.join(&cfg.enum_file)) {
        Ok(s) => s,
        Err(e) => {
            diags.push(Diagnostic::new(
                &enum_rel,
                0,
                "trace-coverage",
                format!("cannot read schema file: {e}"),
            ));
            return (diags, summary);
        }
    };
    let enum_tokens = lex(&enum_src).tokens;
    let Some(variants) = enum_variants(&enum_tokens, &cfg.enum_name) else {
        diags.push(Diagnostic::new(
            &enum_rel,
            0,
            "trace-coverage",
            format!("enum {} not found", cfg.enum_name),
        ));
        return (diags, summary);
    };
    summary.variants = variants.clone();

    for s in &cfg.surfaces {
        let file_rel = rel(&s.file);
        let mut cov = SurfaceCoverage {
            label: s.label.clone(),
            file: file_rel.clone(),
            missing: Vec::new(),
            stale: Vec::new(),
            wildcards: Vec::new(),
        };
        let tokens = if s.file == cfg.enum_file {
            enum_tokens.clone()
        } else {
            match std::fs::read_to_string(root.join(&s.file)) {
                Ok(src) => lex(&src).tokens,
                Err(e) => {
                    diags.push(Diagnostic::new(
                        &file_rel,
                        0,
                        "trace-coverage",
                        format!("cannot read surface file for {}: {e}", s.label),
                    ));
                    continue;
                }
            }
        };
        let Some((start, end, decl_line)) = item_body(&tokens, s.item, &s.name) else {
            diags.push(Diagnostic::new(
                &file_rel,
                0,
                "trace-coverage",
                format!("surface item `{}` not found ({})", s.name, s.label),
            ));
            continue;
        };
        let (refs, wildcards) = collect_refs(&tokens[start..end], &cfg.enum_name);
        for v in &variants {
            if !refs.iter().any(|(r, _)| r == v) {
                diags.push(Diagnostic::new(
                    &file_rel,
                    decl_line,
                    "trace-coverage",
                    format!("{} does not handle {}::{v}", s.label, cfg.enum_name),
                ));
                cov.missing.push(v.clone());
            }
        }
        for (r, line) in &refs {
            if !variants.contains(r) {
                diags.push(Diagnostic::new(
                    &file_rel,
                    *line,
                    "trace-coverage",
                    format!(
                        "{} references {}::{r}, which is not a variant (stale arm?)",
                        s.label, cfg.enum_name
                    ),
                ));
                cov.stale.push(r.clone());
            }
        }
        for line in wildcards {
            diags.push(Diagnostic::new(
                &file_rel,
                line,
                "trace-coverage",
                format!(
                    "wildcard `_ =>` arm inside {}: new {} variants would be \
                     silently swallowed; write one arm per variant",
                    s.label, cfg.enum_name
                ),
            ));
            cov.wildcards.push(line);
        }
        summary.surfaces.push(cov);
    }

    if !cfg.emitter_dirs.is_empty() {
        let mut emitted: Vec<(String, u32)> = Vec::new();
        for dir in &cfg.emitter_dirs {
            for f in crate::walk_rs_files(&root.join(dir)) {
                if let Ok(src) = std::fs::read_to_string(&f) {
                    let toks = lex(&src).tokens;
                    let (refs, _) = collect_refs(&toks, &cfg.enum_name);
                    emitted.extend(refs);
                }
            }
        }
        for v in &variants {
            if !emitted.iter().any(|(r, _)| r == v) {
                diags.push(Diagnostic::new(
                    &enum_rel,
                    0,
                    "trace-coverage",
                    format!(
                        "dead trace code: no engine crate ever emits {}::{v}",
                        cfg.enum_name
                    ),
                ));
                summary.dead.push(v.clone());
            }
        }
    }

    (diags, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_parse_from_a_real_shaped_enum() {
        let src = "
#[derive(Debug, Clone, Copy)]
pub enum TraceKind {
    /// doc
    RequestArrive,
    QueueEnter,
    #[cfg(feature = \"x\")]
    Weird,
    Completion,
}
";
        let toks = lex(src).tokens;
        assert_eq!(
            enum_variants(&toks, "TraceKind").unwrap(),
            ["RequestArrive", "QueueEnter", "Weird", "Completion"]
        );
    }

    #[test]
    fn fn_and_const_bodies_are_located() {
        let src = "
impl TraceKind {
    pub const ALL: [TraceKind; 2] = [TraceKind::A, TraceKind::B];
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::A => \"a\",
            TraceKind::B => \"b\",
        }
    }
}
";
        let toks = lex(src).tokens;
        let (s, e, _) = item_body(&toks, SurfaceItem::Const, "ALL").unwrap();
        let (refs, _) = collect_refs(&toks[s..e], "TraceKind");
        assert_eq!(refs.len(), 2);
        let (s, e, _) = item_body(&toks, SurfaceItem::Fn, "name").unwrap();
        let (refs, w) = collect_refs(&toks[s..e], "TraceKind");
        assert_eq!(refs.len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn wildcard_arms_are_detected() {
        let src = "fn f(k: K) -> u32 { match k { K::A => 1, _ => 0 } }";
        let toks = lex(src).tokens;
        let (s, e, _) = item_body(&toks, SurfaceItem::Fn, "f").unwrap();
        let (_, w) = collect_refs(&toks[s..e], "K");
        assert_eq!(w.len(), 1);
    }
}
