//! The `detlint` CLI.
//!
//! ```sh
//! cargo run -p detlint -- check                       # human-readable
//! cargo run -p detlint -- check --json report.json    # + JSON artifact
//! cargo run -p detlint -- check --root /path/to/repo  # explicit root
//! ```
//!
//! Exit status: 0 when the workspace is clean (every finding allowlisted
//! with a written reason and the trace schema fully covered), 1 on any
//! violation, 2 on usage errors.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: detlint check [--json <path>] [--root <dir>]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd != "check" {
        eprintln!("unknown command {cmd:?}");
        usage();
    }
    let mut json_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_out = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--root" => root = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            _ => {
                eprintln!("unknown argument {a:?}");
                usage();
            }
        }
    }
    let root = root
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            detlint::find_workspace_root(&cwd)
        })
        .unwrap_or_else(|| {
            eprintln!("error: no workspace root found (pass --root)");
            std::process::exit(2);
        });

    let report = detlint::run_check(&root, &detlint::WorkspaceConfig::repo_default());
    print!("{}", report.render_text());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
    if !report.clean() {
        eprintln!("detlint: FAILED — fix the violations or allowlist them with a reason");
        std::process::exit(1);
    }
}
