//! **detlint** — the workspace determinism & trace-schema static-analysis
//! pass.
//!
//! Three analyzer families (see `docs/static-analysis.md`):
//!
//! * [`lints`] — determinism lints over the simulation crates: deny
//!   hash-ordered containers, wall-clock reads, ambient randomness, rogue
//!   OS threads and unordered float reductions, with a
//!   `// detlint::allow(<lint>, reason = "...")` escape hatch that
//!   requires a written justification.
//! * [`coverage`] — trace-schema coverage: every `TraceKind` variant must
//!   be handled by both exporters and dispositioned by the trace audit,
//!   and emitted by at least one engine crate.
//! * [`conservation`] — counter-conservation dataflow: every counter
//!   field has exactly one increment site per scope, is consumed by an
//!   audit (or waived with a reason), is folded by both fleet drivers,
//!   and the drivers publish identical registry name sets; plus the
//!   shared-state ban in the parallel driver and the
//!   `#![forbid(unsafe_code)]` meta-check on sim crate roots.
//!
//! Run it with `cargo run -p detlint -- check` (wired into
//! `scripts/smoke.sh`); `--json <path>` writes a machine-readable report.
//! The pass is token-level by design: the offline build environment has no
//! `syn`, so a small truthful lexer ([`lexer`]) stands in for an AST.

use std::path::{Path, PathBuf};

pub mod conservation;
pub mod coverage;
pub mod diag;
pub mod lexer;
pub mod lints;

pub use conservation::{ConservationConfig, CounterSpec, CONSERVATION_LINTS};
pub use coverage::{CoverageConfig, CoverageSummary, Surface, SurfaceItem};
pub use diag::Diagnostic;
pub use lints::{LintOptions, LINTS};

use serde::Value;

/// Which files the determinism lints scan and how.
#[derive(Debug, Clone)]
pub struct WorkspaceConfig {
    /// Directories (relative to the root) scanned for `.rs` files.
    /// `vendor/` and `target/` are always skipped, wherever they appear.
    pub lint_dirs: Vec<PathBuf>,
    /// Files (relative to the root) where `thread-spawn` is sanctioned.
    pub spawn_sanctioned: Vec<PathBuf>,
    /// The schema-coverage configurations to run (empty disables the
    /// analyzer). The repo default checks two schemas: the `TraceKind`
    /// event schema and the span layer's `Phase` schema.
    pub coverage: Vec<CoverageConfig>,
    /// The counter-conservation family (counter specs, registry parity,
    /// shared-state files, forbid-unsafe roots). Empty configs disable
    /// each sub-check.
    pub conservation: ConservationConfig,
}

impl WorkspaceConfig {
    /// The real repository layout: every simulation crate plus the bench
    /// harnesses and the root package's `src`/`tests`/`examples`.
    ///
    /// Deliberately out of scope:
    /// * `vendor/` — third-party stand-ins, not simulation code (always
    ///   skipped by the walker, even if configured).
    /// * `crates/rt/` — the real-socket runtime; wall clocks and OS
    ///   threads are its entire point.
    /// * `crates/detlint/` — this crate's fixtures contain violations on
    ///   purpose.
    pub fn repo_default() -> Self {
        let crates = [
            "simcore", "core", "tcp", "cpu", "servers", "workload", "fault", "metrics", "obs",
            "bench", "fleet", "uring",
        ];
        let mut lint_dirs: Vec<PathBuf> = crates
            .iter()
            .map(|c| PathBuf::from(format!("crates/{c}/src")))
            .collect();
        lint_dirs.extend(["src".into(), "tests".into(), "examples".into()]);
        WorkspaceConfig {
            lint_dirs,
            spawn_sanctioned: vec!["crates/core/src/runner.rs".into()],
            coverage: vec![CoverageConfig::repo_default(), CoverageConfig::span_schema()],
            conservation: ConservationConfig::repo_default(),
        }
    }
}

/// The outcome of a full `check` run.
#[derive(Debug)]
pub struct Report {
    /// Every diagnostic, including allowlisted ones, sorted and deduped.
    pub diagnostics: Vec<Diagnostic>,
    /// Schema-coverage details, one summary per configured schema.
    pub coverage: Vec<CoverageSummary>,
    /// Number of `.rs` files the determinism lints scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Diagnostics that actually fail the build (not allowlisted).
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Allowlisted findings (kept for the report artifact).
    pub fn allowed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// `true` when the workspace passes.
    pub fn clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Human-readable rendering, one line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in self.violations() {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.lint, d.message
            ));
        }
        for d in self.allowed() {
            out.push_str(&format!(
                "{}:{}: [{}] allowed: {}\n",
                d.file,
                d.line,
                d.lint,
                d.allowed.as_deref().unwrap_or_default()
            ));
        }
        let nviol = self.violations().count();
        let nallow = self.allowed().count();
        out.push_str(&format!(
            "detlint: {} file(s) scanned, {nviol} violation(s), {nallow} allowlisted\n",
            self.files_scanned
        ));
        out
    }

    /// Machine-readable JSON (`detlint --json`).
    pub fn to_json(&self) -> String {
        let diag_value = |d: &Diagnostic| {
            let mut m = vec![
                ("file".to_string(), Value::Str(d.file.clone())),
                ("line".to_string(), Value::UInt(u64::from(d.line))),
                ("lint".to_string(), Value::Str(d.lint.clone())),
                ("message".to_string(), Value::Str(d.message.clone())),
            ];
            if let Some(r) = &d.allowed {
                m.push(("allowed_reason".to_string(), Value::Str(r.clone())));
            }
            Value::Map(m)
        };
        let strs = |v: &[String]| Value::Seq(v.iter().map(|s| Value::Str(s.clone())).collect());
        let mut root = vec![
            ("version".to_string(), Value::UInt(1)),
            (
                "violations".to_string(),
                Value::Seq(self.violations().map(diag_value).collect()),
            ),
            (
                "allowed".to_string(),
                Value::Seq(self.allowed().map(diag_value).collect()),
            ),
            (
                "files_scanned".to_string(),
                Value::UInt(self.files_scanned as u64),
            ),
            ("clean".to_string(), Value::Bool(self.clean())),
        ];
        if !self.coverage.is_empty() {
            let schemas = self
                .coverage
                .iter()
                .map(|cov| {
                    let surfaces = cov
                        .surfaces
                        .iter()
                        .map(|s| {
                            Value::Map(vec![
                                ("label".to_string(), Value::Str(s.label.clone())),
                                ("file".to_string(), Value::Str(s.file.clone())),
                                ("missing".to_string(), strs(&s.missing)),
                                ("stale".to_string(), strs(&s.stale)),
                                (
                                    "wildcards".to_string(),
                                    Value::Seq(
                                        s.wildcards
                                            .iter()
                                            .map(|&l| Value::UInt(u64::from(l)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect();
                    Value::Map(vec![
                        ("enum".to_string(), Value::Str(cov.enum_name.clone())),
                        ("variants".to_string(), strs(&cov.variants)),
                        ("surfaces".to_string(), Value::Seq(surfaces)),
                        ("dead".to_string(), strs(&cov.dead)),
                    ])
                })
                .collect();
            root.push(("coverage".to_string(), Value::Seq(schemas)));
        }
        serde_json::to_string_pretty(&Value::Map(root)).expect("report serializes")
    }
}

/// Recursively collects `.rs` files under `dir`, skipping any directory
/// named `vendor`, `target` or starting with `.`. The listing is sorted,
/// so diagnostics are emitted in a stable order across runs.
pub fn walk_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            out.extend(walk_rs_files(&path));
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out
}

/// Runs the full pass (determinism lints + counter conservation +
/// trace-schema coverage) over the workspace at `root`.
///
/// Per-file raw findings from the determinism lints and the
/// conservation family are merged first, then each file's allow
/// annotations are applied exactly once over the combined set — so one
/// `detlint::allow` comment line can waive any lint, and unused-allow
/// detection sees the whole picture. Coverage diagnostics bypass
/// allows by design (a missing match arm is fixed, not waived).
pub fn run_check(root: &Path, cfg: &WorkspaceConfig) -> Report {
    let mut known = lints::lint_names();
    known.extend(conservation::lint_names());
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;

    // Raw (pre-allow) findings per file. Every walked file gets an
    // entry even when clean, so unused-allow/bad-allow detection runs
    // everywhere; lexes are kept for the allow pass.
    let mut raw: std::collections::BTreeMap<String, Vec<Diagnostic>> =
        std::collections::BTreeMap::new();
    let mut lexes: std::collections::BTreeMap<String, lexer::Lexed> =
        std::collections::BTreeMap::new();

    for dir in &cfg.lint_dirs {
        for file in walk_rs_files(&root.join(dir)) {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(source) = std::fs::read_to_string(&file) else {
                continue;
            };
            files_scanned += 1;
            let opts = LintOptions {
                spawn_sanctioned: cfg
                    .spawn_sanctioned
                    .iter()
                    .any(|s| s.as_os_str() == std::ffi::OsStr::new(&rel)),
            };
            let (found, lexed) = lints::lint_source(&rel, &source, &opts);
            raw.entry(rel.clone()).or_default().extend(found);
            lexes.insert(rel, lexed);
        }
    }

    for d in conservation::analyze(root, &cfg.conservation) {
        raw.entry(d.file.clone()).or_default().push(d);
    }

    for (rel, found) in raw {
        // Conservation targets outside the walked lint dirs still get
        // their allow annotations honored: lex on demand.
        let lexed = lexes.remove(&rel).or_else(|| {
            std::fs::read_to_string(root.join(&rel))
                .ok()
                .map(|src| lexer::lex(&src))
        });
        match lexed {
            Some(lx) => diagnostics.extend(diag::apply_allows(
                &rel,
                &lx.comments,
                &lx.tokens,
                &known,
                found,
            )),
            None => diagnostics.extend(found),
        }
    }

    let coverage = cfg
        .coverage
        .iter()
        .map(|cov_cfg| {
            let (cov_diags, summary) = coverage::analyze(root, cov_cfg);
            diagnostics.extend(cov_diags);
            summary
        })
        .collect();

    // Deduplicate (identical findings can only arise from overlapping
    // scope configuration, but the report must be stable regardless) and
    // order deterministically.
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
    diagnostics.dedup_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).eq(&(&b.file, b.line, &b.lint, &b.message))
    });

    Report {
        diagnostics,
        coverage,
        files_scanned,
    }
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_vendor_and_sorts() {
        let tmp = std::env::temp_dir().join(format!("detlint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(tmp.join("a/vendor/deep")).unwrap();
        std::fs::create_dir_all(tmp.join("a/target")).unwrap();
        std::fs::create_dir_all(tmp.join("b")).unwrap();
        std::fs::write(tmp.join("a/z.rs"), "").unwrap();
        std::fs::write(tmp.join("a/vendor/deep/x.rs"), "").unwrap();
        std::fs::write(tmp.join("a/target/y.rs"), "").unwrap();
        std::fs::write(tmp.join("b/a.rs"), "").unwrap();
        std::fs::write(tmp.join("b/readme.md"), "").unwrap();
        let files: Vec<String> = walk_rs_files(&tmp)
            .into_iter()
            .map(|p| p.strip_prefix(&tmp).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, ["a/z.rs", "b/a.rs"]);
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn report_json_is_valid_and_flags_clean() {
        let report = Report {
            diagnostics: vec![
                Diagnostic::new("a.rs", 3, "wall-clock", "boom"),
                Diagnostic {
                    allowed: Some("why".into()),
                    ..Diagnostic::new("a.rs", 9, "hash-iter", "ok")
                },
            ],
            coverage: Vec::new(),
            files_scanned: 1,
        };
        assert!(!report.clean());
        let v: Value = serde_json::from_str(&report.to_json()).expect("valid json");
        assert_eq!(v.get("clean"), Some(&Value::Bool(false)));
        let viols = v.get("violations").unwrap().as_seq().unwrap();
        assert_eq!(viols.len(), 1);
    }
}
