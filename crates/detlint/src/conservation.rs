//! Counter-conservation dataflow: every counter field is incremented in
//! exactly one place, consumed by an audit, and folded by both fleet
//! drivers.
//!
//! The repo's headline guarantee is bitwise reproducibility of the
//! Table I–IV counters. That only means something if the counters
//! themselves obey conservation: a field incremented from two sites can
//! double-count under refactoring, a field no audit reads can rot
//! silently, and a per-shard counter one driver sums but the other
//! drops breaks the drivers' bit-identity contract. This pass
//! mechanizes those conventions at the token level:
//!
//! | lint | violation |
//! |------|-----------|
//! | `counter-dup-increment` | a counter field has more than one increment site per (file, mode) |
//! | `counter-dead` | a counter field is defined but never incremented anywhere in scope |
//! | `counter-unaudited` | no audit surface ever reads the field |
//! | `counter-unsummed` | a per-shard counter is not folded by every fleet-driver epilogue |
//! | `registry-parity` | the two fleet drivers emit different metrics-registry name sets |
//! | `shared-state` | `Atomic*`/`Mutex`/`unsafe`/... inside the schedule-independent driver |
//! | `forbid-unsafe` | a sim crate root without `#![forbid(unsafe_code)]` |
//!
//! Site classification is heuristic but truthful for the patterns the
//! workspace actually uses:
//!
//! * `f += rhs` is an **increment site** unless `rhs` mentions `f`
//!   itself (`sq_submits += ud.sq_submits` is aggregation — the real
//!   increment lives behind `ud`).
//! * `f = <expr>` is a **high-water increment site** when `<expr>`
//!   mentions `f` exactly once and calls `max` (`hw = hw.max(x)`);
//!   two mentions (`self.hw = self.hw.max(other.hw)`) is aggregation.
//! * struct-literal fields (`f: expr`, shorthand `f,`) never match.
//! * a `.f +=` site (through a struct) and a bare `f +=` site (a local
//!   later folded into the struct) are distinct *modes*; each mode may
//!   have at most one site per scope file. The interleaved driver
//!   legitimately keeps both a running local and a per-shard struct
//!   counter for the same quantity.
//!
//! Every finding can be waived with
//! `// detlint::allow(<lint>, reason = "...")` at the reported line —
//! the escape hatch doubles as the "explicit reasoned waiver" the
//! conservation contract demands for deliberately-unaudited
//! diagnostics counters.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::coverage::{item_body, SurfaceItem};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Lexed, Token};

/// The conservation lints: `(name, what it denies)`. These names are
/// valid inside `detlint::allow(...)`.
pub const CONSERVATION_LINTS: &[(&str, &str)] = &[
    (
        "counter-dup-increment",
        "a counter field with more than one increment site can double-count",
    ),
    (
        "counter-dead",
        "a counter field that is never incremented reports a constant lie",
    ),
    (
        "counter-unaudited",
        "a counter no audit disposition reads can rot unnoticed",
    ),
    (
        "counter-unsummed",
        "a per-shard counter one fleet driver folds and the other drops breaks bit-identity",
    ),
    (
        "registry-parity",
        "the fleet drivers must publish the identical metrics-registry name set",
    ),
    (
        "shared-state",
        "shared mutable state inside the schedule-independent parallel driver",
    ),
    (
        "forbid-unsafe",
        "sim crate roots must carry #![forbid(unsafe_code)]",
    ),
];

/// The names from [`CONSERVATION_LINTS`].
pub fn lint_names() -> Vec<&'static str> {
    CONSERVATION_LINTS.iter().map(|(n, _)| *n).collect()
}

/// One function whose body *consumes* counter fields by reading them as
/// `<recv>.<field>` — an audit disposition or a driver epilogue.
#[derive(Debug, Clone)]
pub struct AuditSurface {
    /// File the function lives in, relative to the workspace root.
    pub file: PathBuf,
    /// The function's name.
    pub func: String,
    /// Receiver identifiers whose field reads count as consumption
    /// (closure parameters like `|s| s.retries` use `s`).
    pub recv: Vec<String>,
    /// Human-readable label for diagnostics.
    pub label: String,
}

impl AuditSurface {
    pub fn new(file: &str, func: &str, recv: &[&str], label: &str) -> Self {
        AuditSurface {
            file: file.into(),
            func: func.into(),
            recv: recv.iter().map(|r| r.to_string()).collect(),
            label: label.into(),
        }
    }
}

/// Conservation contract for one counter struct.
#[derive(Debug, Clone)]
pub struct CounterSpec {
    /// The struct's name (`RunSummary`, `UringCounters`, ...).
    pub strukt: String,
    /// File defining the struct, relative to the workspace root.
    pub def_file: PathBuf,
    /// `u64` fields excluded from the contract (derived quantities such
    /// as percentile latencies that happen to share the type).
    pub exclude: Vec<String>,
    /// `(field, site_name)` pairs: the field's increment sites use a
    /// different local name (`shard_routes` accumulates via `routes`).
    pub aliases: Vec<(String, String)>,
    /// Files scanned for increment sites.
    pub scopes: Vec<PathBuf>,
    /// Run the one-increment-site / dead-counter checks. Off for pure
    /// fold targets (`ShardSummary` is only ever built whole from
    /// deltas).
    pub check_increments: bool,
    /// Audit surfaces; a field read by none of them is
    /// `counter-unaudited`. Empty disables the check.
    pub audits: Vec<AuditSurface>,
    /// Epilogue surfaces that must **each** fold every field
    /// (`counter-unsummed` otherwise). Empty disables the check.
    pub summed: Vec<AuditSurface>,
}

/// A pair of functions that must publish the identical set of
/// statically-named registry counters and gauges.
#[derive(Debug, Clone)]
pub struct RegistryParity {
    /// Human-readable label for diagnostics.
    pub label: String,
    /// `(file, fn)` of the reference side.
    pub left: (PathBuf, String),
    /// `(file, fn)` of the side checked against it.
    pub right: (PathBuf, String),
}

/// Configuration for the whole conservation family.
#[derive(Debug, Clone)]
pub struct ConservationConfig {
    /// Counter structs under contract.
    pub specs: Vec<CounterSpec>,
    /// Registry-parity pairs.
    pub parity: Vec<RegistryParity>,
    /// Files where shared-mutable-state constructs are denied.
    pub shared_state_files: Vec<PathBuf>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_roots: Vec<PathBuf>,
}

impl ConservationConfig {
    /// The real workspace contract: `RunSummary` (Table I–IV counters),
    /// the fleet drivers' `Counters`/`ShardSummary`, `UringCounters`,
    /// driver registry parity, a shared-state-free parallel driver, and
    /// unsafe-free sim crates.
    pub fn repo_default() -> Self {
        let disposition = AuditSurface::new(
            "crates/obs/src/audit.rs",
            "disposition",
            &["s"],
            "trace-audit disposition (audit::disposition)",
        );
        let trace_audit = AuditSurface::new(
            "crates/obs/src/audit.rs",
            "audit",
            &["summary"],
            "trace-audit reconciliation (audit::audit)",
        );
        let fleet_audit = AuditSurface::new(
            "crates/fleet/src/cluster.rs",
            "fleet_audit",
            &["s", "fleet"],
            "fleet-audit per-shard sums (cluster::fleet_audit)",
        );
        let crate_roots = [
            "simcore", "core", "tcp", "cpu", "servers", "workload", "fault", "metrics", "obs",
            "bench", "fleet", "uring", "dag",
        ];
        let mut forbid_unsafe_roots: Vec<PathBuf> = crate_roots
            .iter()
            .map(|c| PathBuf::from(format!("crates/{c}/src/lib.rs")))
            .collect();
        forbid_unsafe_roots.push("src/lib.rs".into());
        ConservationConfig {
            specs: vec![
                CounterSpec {
                    strukt: "RunSummary".into(),
                    def_file: "crates/metrics/src/summary.rs".into(),
                    // Derived latency stats share the u64 type but are
                    // computed from the histogram, not counted.
                    exclude: [
                        "added_latency_us",
                        "mean_rt_us",
                        "p50_rt_us",
                        "p95_rt_us",
                        "p99_rt_us",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    aliases: vec![("shard_routes".into(), "routes".into())],
                    scopes: vec![
                        "crates/servers/src/engine.rs".into(),
                        "crates/fleet/src/cluster.rs".into(),
                        "crates/fleet/src/parallel.rs".into(),
                    ],
                    check_increments: true,
                    audits: vec![disposition.clone(), trace_audit],
                    summed: Vec::new(),
                },
                CounterSpec {
                    strukt: "Counters".into(),
                    def_file: "crates/fleet/src/cluster.rs".into(),
                    exclude: Vec::new(),
                    aliases: Vec::new(),
                    scopes: vec![
                        "crates/fleet/src/cluster.rs".into(),
                        "crates/fleet/src/parallel.rs".into(),
                    ],
                    check_increments: true,
                    audits: vec![fleet_audit.clone()],
                    summed: vec![
                        AuditSurface::new(
                            "crates/fleet/src/cluster.rs",
                            "drive_with",
                            &["d"],
                            "interleaved driver epilogue (cluster::drive_with)",
                        ),
                        AuditSurface::new(
                            "crates/fleet/src/parallel.rs",
                            "drive_parallel",
                            &["d"],
                            "parallel driver epilogue (parallel::drive_parallel)",
                        ),
                    ],
                },
                CounterSpec {
                    strukt: "ShardSummary".into(),
                    def_file: "crates/fleet/src/cluster.rs".into(),
                    exclude: Vec::new(),
                    aliases: Vec::new(),
                    scopes: Vec::new(),
                    // ShardSummary is built whole from counter deltas;
                    // its contract is consumption by the fleet audit.
                    check_increments: false,
                    audits: vec![fleet_audit],
                    summed: Vec::new(),
                },
                CounterSpec {
                    strukt: "TierCounters".into(),
                    def_file: "crates/dag/src/summary.rs".into(),
                    exclude: Vec::new(),
                    aliases: Vec::new(),
                    // The DAG driver is the only increment scope; the
                    // summary's fold (`sums.x += t.x`) and the bench
                    // studies only read the finished counters.
                    scopes: vec!["crates/dag/src/driver.rs".into()],
                    check_increments: true,
                    audits: vec![AuditSurface::new(
                        "crates/dag/src/summary.rs",
                        "dag_audit",
                        &["t", "root"],
                        "dag-audit per-tier reconciliation (summary::dag_audit)",
                    )],
                    summed: Vec::new(),
                },
                CounterSpec {
                    strukt: "UringCounters".into(),
                    def_file: "crates/uring/src/lib.rs".into(),
                    exclude: Vec::new(),
                    aliases: Vec::new(),
                    scopes: vec!["crates/uring/src/lib.rs".into()],
                    check_increments: true,
                    // Ring traffic flows into the same-named RunSummary
                    // fields the trace audit reconciles; purely
                    // diagnostic ring fields carry waivers at their
                    // definitions.
                    audits: vec![disposition],
                    summed: Vec::new(),
                },
            ],
            parity: vec![RegistryParity {
                label: "fleet drivers".into(),
                left: ("crates/fleet/src/cluster.rs".into(), "drive_with".into()),
                right: (
                    "crates/fleet/src/parallel.rs".into(),
                    "drive_parallel".into(),
                ),
            }],
            shared_state_files: vec!["crates/fleet/src/parallel.rs".into()],
            forbid_unsafe_roots,
        }
    }
}

/// How a site touches the counter: through a struct field access
/// (`cnt.f += 1`) or as a bare local (`f += 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SiteMode {
    Field,
    Local,
}

impl SiteMode {
    fn label(self) -> &'static str {
        match self {
            SiteMode::Field => "field",
            SiteMode::Local => "local",
        }
    }
}

/// `tokens[j..)` up to (exclusive) the end of the current expression:
/// the first `;` or `,` at delimiter depth zero, or an unmatched
/// closing delimiter.
fn expr_end(tokens: &[Token], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < tokens.len() {
        match &tokens[j].text {
            crate::lexer::TokenText::Punct(c) => match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ';' | ',' if depth == 0 => break,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    j
}

/// Extracts `(field_name, line)` for every `u64` field of
/// `struct <name> { ... }`.
fn struct_u64_fields(tokens: &[Token], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("struct")
            && tokens[i + 1].is_ident(name)
            && tokens[i + 2].is_punct('{')
        {
            let mut fields = Vec::new();
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].text {
                    crate::lexer::TokenText::Punct('{')
                    | crate::lexer::TokenText::Punct('(')
                    | crate::lexer::TokenText::Punct('[') => depth += 1,
                    crate::lexer::TokenText::Punct('}')
                    | crate::lexer::TokenText::Punct(')')
                    | crate::lexer::TokenText::Punct(']') => depth -= 1,
                    crate::lexer::TokenText::Ident(id)
                        if depth == 1
                            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                            && tokens.get(j + 2).is_some_and(|t| t.is_ident("u64")) =>
                    {
                        fields.push((id.clone(), tokens[j].line));
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some(fields);
        }
        i += 1;
    }
    None
}

/// Finds every increment site for counter `name` in a token stream,
/// per the classification rules in the module docs.
fn increment_sites(tokens: &[Token], name: &str) -> Vec<(SiteMode, u32)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident(name) {
            continue;
        }
        let mode = if i > 0 && tokens[i - 1].is_punct('.') {
            SiteMode::Field
        } else {
            SiteMode::Local
        };
        // `name += rhs`
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('+'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let end = expr_end(tokens, i + 3);
            let aggregates = tokens[i + 3..end].iter().any(|t| t.is_ident(name));
            if !aggregates {
                out.push((mode, tokens[i].line));
            }
            continue;
        }
        // `name = name.max(x)` — high-water update. Skip `==` and `=>`.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
        {
            let end = expr_end(tokens, i + 2);
            let rhs = &tokens[i + 2..end];
            let mentions = rhs.iter().filter(|t| t.is_ident(name)).count();
            let has_max = rhs.iter().any(|t| t.is_ident("max"));
            if mentions == 1 && has_max {
                out.push((mode, tokens[i].line));
            }
        }
    }
    out
}

/// `true` when `tokens` contain a `<recv>.<field>` read for any of the
/// given receivers.
fn consumes_field(tokens: &[Token], recv: &[String], field: &str) -> bool {
    tokens.iter().enumerate().any(|(i, t)| {
        t.ident().is_some_and(|id| recv.iter().any(|r| r == id))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident(field))
    })
}

/// Statically-named registry emissions (`.counter("name"` /
/// `.gauge("name"`) on source lines `lo..=hi`, as `(kind, name)` pairs.
/// Dynamically-formatted names (`.counter(&format!(...))`) are
/// intentionally out of scope — parity is a contract over the static
/// name set.
fn registry_names(source: &str, lo: u32, hi: u32) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let ln = idx as u32 + 1;
        if ln < lo || ln > hi {
            continue;
        }
        for (kind, pat) in [("counter", ".counter(\""), ("gauge", ".gauge(\"")] {
            let mut rest = line;
            while let Some(p) = rest.find(pat) {
                let tail = &rest[p + pat.len()..];
                let Some(q) = tail.find('"') else { break };
                out.push((kind.to_string(), tail[..q].to_string()));
                rest = &tail[q..];
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Lazily read + lex files relative to a root, each at most once.
struct FileCache<'a> {
    root: &'a Path,
    map: BTreeMap<PathBuf, Option<(String, Lexed)>>,
}

impl<'a> FileCache<'a> {
    fn new(root: &'a Path) -> Self {
        FileCache {
            root,
            map: BTreeMap::new(),
        }
    }

    fn get(&mut self, file: &Path) -> Option<&(String, Lexed)> {
        if !self.map.contains_key(file) {
            let loaded = std::fs::read_to_string(self.root.join(file))
                .ok()
                .map(|src| {
                    let lexed = lex(&src);
                    (src, lexed)
                });
            self.map.insert(file.to_path_buf(), loaded);
        }
        self.map.get(file).and_then(|o| o.as_ref())
    }
}

fn rel(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

/// Runs the conservation family rooted at `root`. Allow annotations are
/// *not* applied here — [`crate::run_check`] feeds the result through
/// [`crate::diag::apply_allows`] per file. I/O failures (a missing
/// scope file, an unparsable struct) are diagnostics, not errors: a
/// contract the analyzer cannot see is a failed check.
pub fn analyze(root: &Path, cfg: &ConservationConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut cache = FileCache::new(root);

    for spec in &cfg.specs {
        analyze_spec(spec, &mut cache, &mut diags);
    }
    for pair in &cfg.parity {
        analyze_parity(pair, &mut cache, &mut diags);
    }
    for file in &cfg.shared_state_files {
        analyze_shared_state(file, &mut cache, &mut diags);
    }
    for file in &cfg.forbid_unsafe_roots {
        analyze_forbid_unsafe(file, &mut cache, &mut diags);
    }
    diags
}

fn analyze_spec(spec: &CounterSpec, cache: &mut FileCache<'_>, diags: &mut Vec<Diagnostic>) {
    let def_rel = rel(&spec.def_file);
    let Some((_, lexed)) = cache.get(&spec.def_file) else {
        diags.push(Diagnostic::new(
            &def_rel,
            0,
            "counter-dead",
            format!("cannot read {} definition file", spec.strukt),
        ));
        return;
    };
    let Some(fields) = struct_u64_fields(&lexed.tokens, &spec.strukt) else {
        diags.push(Diagnostic::new(
            &def_rel,
            0,
            "counter-dead",
            format!("struct {} not found in {}", spec.strukt, def_rel),
        ));
        return;
    };
    let fields: Vec<(String, u32)> = fields
        .into_iter()
        .filter(|(f, _)| !spec.exclude.contains(f))
        .collect();

    if spec.check_increments {
        for (field, def_line) in &fields {
            let site_name = spec
                .aliases
                .iter()
                .find(|(f, _)| f == field)
                .map(|(_, s)| s.as_str())
                .unwrap_or(field.as_str());
            let mut total = 0usize;
            for scope in &spec.scopes {
                let scope_rel = rel(scope);
                let Some((_, lexed)) = cache.get(scope) else {
                    diags.push(Diagnostic::new(
                        &scope_rel,
                        0,
                        "counter-dup-increment",
                        format!("cannot read increment scope for {}", spec.strukt),
                    ));
                    continue;
                };
                let sites = increment_sites(&lexed.tokens, site_name);
                total += sites.len();
                for mode in [SiteMode::Field, SiteMode::Local] {
                    let in_mode: Vec<u32> = sites
                        .iter()
                        .filter(|(m, _)| *m == mode)
                        .map(|(_, l)| *l)
                        .collect();
                    for extra in in_mode.iter().skip(1) {
                        diags.push(Diagnostic::new(
                            &scope_rel,
                            *extra,
                            "counter-dup-increment",
                            format!(
                                "{}.{field} has a second {} increment site here \
                                 (first at {scope_rel}:{}); a counter must be \
                                 incremented from exactly one place per scope",
                                spec.strukt,
                                mode.label(),
                                in_mode[0],
                            ),
                        ));
                    }
                }
            }
            if total == 0 {
                diags.push(Diagnostic::new(
                    &def_rel,
                    *def_line,
                    "counter-dead",
                    format!(
                        "{}.{field} is defined but never incremented in any \
                         configured scope — dead counter, or its increment \
                         site moved out of the conservation contract",
                        spec.strukt,
                    ),
                ));
            }
        }
    }

    if !spec.audits.is_empty() {
        for (field, def_line) in &fields {
            let mut consumed = false;
            for surface in &spec.audits {
                if surface_consumes(surface, field, cache, diags) {
                    consumed = true;
                    break;
                }
            }
            if !consumed {
                let labels: Vec<&str> = spec.audits.iter().map(|s| s.label.as_str()).collect();
                diags.push(Diagnostic::new(
                    &def_rel,
                    *def_line,
                    "counter-unaudited",
                    format!(
                        "{}.{field} is consumed by no audit surface ({}); \
                         audit it or waive it with a written reason",
                        spec.strukt,
                        labels.join(", "),
                    ),
                ));
            }
        }
    }

    for surface in &spec.summed {
        for (field, def_line) in &fields {
            if !surface_consumes(surface, field, cache, diags) {
                diags.push(Diagnostic::new(
                    &def_rel,
                    *def_line,
                    "counter-unsummed",
                    format!(
                        "{}.{field} is not folded by {}; both fleet drivers \
                         must sum every per-shard counter identically",
                        spec.strukt, surface.label,
                    ),
                ));
            }
        }
    }
}

/// `true` when `surface`'s function body reads `<recv>.<field>`.
/// Unreadable files / missing functions surface as diagnostics once via
/// the `false` path of the callers.
fn surface_consumes(
    surface: &AuditSurface,
    field: &str,
    cache: &mut FileCache<'_>,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let file_rel = rel(&surface.file);
    let Some((_, lexed)) = cache.get(&surface.file) else {
        push_once(
            diags,
            Diagnostic::new(
                &file_rel,
                0,
                "counter-unaudited",
                format!("cannot read audit surface file for {}", surface.label),
            ),
        );
        return false;
    };
    let Some((start, end, _)) = item_body(&lexed.tokens, SurfaceItem::Fn, &surface.func) else {
        push_once(
            diags,
            Diagnostic::new(
                &file_rel,
                0,
                "counter-unaudited",
                format!("fn `{}` not found ({})", surface.func, surface.label),
            ),
        );
        return false;
    };
    consumes_field(&lexed.tokens[start..end], &surface.recv, field)
}

/// Pushes `d` unless an identical diagnostic is already present
/// (missing-surface errors would otherwise repeat per field).
fn push_once(diags: &mut Vec<Diagnostic>, d: Diagnostic) {
    if !diags
        .iter()
        .any(|e| e.file == d.file && e.line == d.line && e.lint == d.lint && e.message == d.message)
    {
        diags.push(d);
    }
}

fn analyze_parity(pair: &RegistryParity, cache: &mut FileCache<'_>, diags: &mut Vec<Diagnostic>) {
    let mut sides = Vec::new();
    for (file, func) in [&pair.left, &pair.right] {
        let file_rel = rel(file);
        let Some((src, lexed)) = cache.get(file) else {
            diags.push(Diagnostic::new(
                &file_rel,
                0,
                "registry-parity",
                format!("cannot read {} for registry parity ({})", file_rel, pair.label),
            ));
            return;
        };
        let Some((_start, end, decl_line)) = item_body(&lexed.tokens, SurfaceItem::Fn, func) else {
            diags.push(Diagnostic::new(
                &file_rel,
                0,
                "registry-parity",
                format!("fn `{func}` not found for registry parity ({})", pair.label),
            ));
            return;
        };
        let lo = decl_line;
        let hi = lexed.tokens.get(end).map_or(u32::MAX, |t| t.line);
        sides.push((
            file_rel,
            func.clone(),
            decl_line,
            registry_names(src, lo, hi),
        ));
    }
    let (l, r) = (&sides[0], &sides[1]);
    for (here, there) in [(l, r), (r, l)] {
        for (kind, name) in &here.3 {
            if !there.3.contains(&(kind.clone(), name.clone())) {
                diags.push(Diagnostic::new(
                    &there.0,
                    there.2,
                    "registry-parity",
                    format!(
                        "registry {kind} \"{name}\" is published by {}::{} but \
                         not by {}::{} ({}): the drivers' registry snapshots \
                         cannot be bit-identical",
                        here.0, here.1, there.0, there.1, pair.label,
                    ),
                ));
            }
        }
    }
}

fn analyze_shared_state(file: &Path, cache: &mut FileCache<'_>, diags: &mut Vec<Diagnostic>) {
    let file_rel = rel(file);
    let Some((_, lexed)) = cache.get(file) else {
        diags.push(Diagnostic::new(
            &file_rel,
            0,
            "shared-state",
            "cannot read shared-state-checked file",
        ));
        return;
    };
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let hit = if id.starts_with("Atomic") && id.len() > "Atomic".len() {
            Some(format!("{id} (atomic shared state)"))
        } else if matches!(id, "Mutex" | "RwLock" | "Condvar" | "UnsafeCell" | "OnceLock") {
            Some(format!("{id} (lock / interior mutability)"))
        } else if id == "unsafe" {
            Some("unsafe block/fn".to_string())
        } else if id == "static"
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut"))
        {
            Some("static mut (global mutable state)".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            diags.push(Diagnostic::new(
                &file_rel,
                t.line,
                "shared-state",
                format!(
                    "{what} in the schedule-independent parallel driver: worker \
                     results must flow only through the recorded-event protocol \
                     (channels + deterministic replay), or carry a written waiver",
                ),
            ));
        }
    }
}

fn analyze_forbid_unsafe(file: &Path, cache: &mut FileCache<'_>, diags: &mut Vec<Diagnostic>) {
    let file_rel = rel(file);
    let Some((_, lexed)) = cache.get(file) else {
        diags.push(Diagnostic::new(
            &file_rel,
            0,
            "forbid-unsafe",
            "cannot read crate root for the forbid-unsafe check",
        ));
        return;
    };
    let tokens = &lexed.tokens;
    let has_attr = tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !has_attr {
        diags.push(Diagnostic::new(
            &file_rel,
            1,
            "forbid-unsafe",
            "sim crate root lacks #![forbid(unsafe_code)]; add it, or waive \
             with a written reason where unsafe is load-bearing",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str, name: &str) -> Vec<(SiteMode, u32)> {
        increment_sites(&lex(src).tokens, name)
    }

    #[test]
    fn plain_increments_classify_by_mode() {
        assert_eq!(
            sites("fn f() { retries += 1; }", "retries"),
            [(SiteMode::Local, 1)]
        );
        assert_eq!(
            sites("fn f() { ctls[s].cnt.retries += 1; }", "retries"),
            [(SiteMode::Field, 1)]
        );
    }

    #[test]
    fn aggregation_is_not_an_increment_site() {
        // Folding a delta whose RHS mentions the field is aggregation.
        assert!(sites("sq_submits += ud.sq_submits;", "sq_submits").is_empty());
        assert!(sites("self.hw = self.hw.max(other.hw);", "hw").is_empty());
        // Struct literals (shorthand or keyed) never match.
        assert!(sites("S { retries, timeouts: t }", "retries").is_empty());
        assert!(sites("S { retries: d.retries }", "retries").is_empty());
        // Derivation through a same-named method is not an increment.
        assert!(sites("let completions = window.completions();", "completions").is_empty());
    }

    #[test]
    fn high_water_updates_are_single_sites() {
        assert_eq!(
            sites("self.c.hw = self.c.hw.max(self.used as u64);", "hw"),
            [(SiteMode::Field, 1)]
        );
    }

    #[test]
    fn comparisons_and_match_arms_do_not_match() {
        assert!(sites("if retries == 3 {}", "retries").is_empty());
        assert!(sites("match x { retries => 1, _ => 0 }", "retries").is_empty());
    }

    #[test]
    fn u64_fields_parse_with_attributes_and_visibility() {
        let src = "
pub struct RunSummary {
    /// doc
    pub server: String,
    #[serde(default)]
    pub retries: u64,
    pub(crate) hedges: u64,
    pub throughput: f64,
    pub concurrency: usize,
}
";
        let fields = struct_u64_fields(&lex(src).tokens, "RunSummary").unwrap();
        let names: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(names, ["retries", "hedges"]);
    }

    #[test]
    fn consumption_requires_the_configured_receiver() {
        let toks = lex("fn disposition() { let f = |s: &R| s.retries; }").tokens;
        assert!(consumes_field(&toks, &["s".into()], "retries"));
        assert!(!consumes_field(&toks, &["x".into()], "retries"));
        assert!(!consumes_field(&toks, &["s".into()], "timeouts"));
    }

    #[test]
    fn registry_names_extract_static_emissions_only() {
        let src = "fn drive() {\n  obs.counter(\"retries\", r);\n  obs.gauge(\"cpu_user\", u);\n  obs.counter(&format!(\"s{s}/{name}\"), v);\n}\n";
        let names = registry_names(src, 1, 4);
        assert_eq!(
            names,
            [
                ("counter".to_string(), "retries".to_string()),
                ("gauge".to_string(), "cpu_user".to_string()),
            ]
            .into_iter()
            .collect::<Vec<_>>()
        );
        // Line-bounded: nothing outside the body range.
        assert!(registry_names(src, 5, 9).is_empty());
    }

    #[test]
    fn shared_state_and_forbid_unsafe_fire() {
        let root = std::env::temp_dir().join(format!("detlint-cons-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join("p.rs"),
            "use std::sync::Mutex;\nstatic mut X: u64 = 0;\nfn f() { unsafe { X += 1 } }\n",
        )
        .unwrap();
        std::fs::write(root.join("lib.rs"), "pub mod p;\n").unwrap();
        let cfg = ConservationConfig {
            specs: Vec::new(),
            parity: Vec::new(),
            shared_state_files: vec!["p.rs".into()],
            forbid_unsafe_roots: vec!["lib.rs".into()],
        };
        let diags = analyze(&root, &cfg);
        assert!(diags.iter().any(|d| d.lint == "shared-state" && d.message.contains("Mutex")));
        assert!(diags
            .iter()
            .any(|d| d.lint == "shared-state" && d.message.contains("static mut")));
        assert!(diags.iter().any(|d| d.lint == "shared-state" && d.message.contains("unsafe")));
        assert!(diags.iter().any(|d| d.lint == "forbid-unsafe"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
