//! A minimal Rust lexer: just enough token structure for pattern-level
//! static analysis.
//!
//! The build environment is offline and `syn` is not vendored, so the
//! analyzers in this crate work on a token stream produced here instead of
//! a full AST. The lexer's one job is to be *truthful about what is code*:
//! comments, doc comments, strings (including raw strings with any number
//! of `#`s), byte strings, char literals and lifetimes are recognized and
//! excluded, so `// like HashMap::new` in a doc comment or `"Instant::now"`
//! inside a string literal can never produce a diagnostic. Comments are
//! returned on the side because the `detlint::allow` escape hatch lives in
//! them.

/// One significant token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifier text, punctuation characters, or a literal
    /// placeholder — literal *contents* are never exposed to analyzers).
    pub text: TokenText,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenText {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any literal (string, char, number); contents withheld by design.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.text {
            TokenText::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.text == TokenText::Punct(c)
    }

    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A comment with its position, used for allow-annotation parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//`/`/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when nothing but whitespace precedes the comment on its line
    /// (a "standalone" comment annotates the *next* code line; a trailing
    /// comment annotates its own).
    pub standalone: bool,
}

/// Lexer output: the significant tokens plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source. Unterminated constructs are tolerated (the rest
/// of the file is swallowed by the open construct) — the pass must never
/// panic on in-progress code.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line on which the last code token ended; a comment is "standalone"
    // when no code precedes it on its own line.
    let mut last_code_line: u32 = 0;

    // Advances past `n` bytes, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            let end = (i + $n).min(bytes.len());
            for &b in &bytes[i..end] {
                if b == b'\n' {
                    line += 1;
                }
            }
            i = end;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => advance!(1),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start_line = line;
                let standalone = line != last_code_line;
                let mut j = i + 2;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: src[i + 2..j].to_string(),
                    line: start_line,
                    standalone,
                });
                advance!(j - i);
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let standalone = line != last_code_line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let inner_end = j.saturating_sub(2).max(i + 2);
                out.comments.push(Comment {
                    text: src[i + 2..inner_end].to_string(),
                    line: start_line,
                    standalone,
                });
                advance!(j - i);
            }
            '"' => {
                advance!(string_len(&src[i..], 0));
                last_code_line = line;
                out.tokens.push(Token {
                    text: TokenText::Literal,
                    line,
                });
            }
            'r' | 'b' if starts_string_prefix(&src[i..]) => {
                let (prefix, hashes) = string_prefix(&src[i..]);
                // `prefix` and `string_len` both count the opening quote.
                advance!(prefix - 1 + string_len(&src[i + prefix - 1..], hashes));
                last_code_line = line;
                out.tokens.push(Token {
                    text: TokenText::Literal,
                    line,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'a` / `'static` (no closing
                // quote after the ident run) is a lifetime; otherwise a
                // char literal, possibly escaped.
                let rest = &src[i + 1..];
                let ident_len = rest
                    .char_indices()
                    .take_while(|&(_, ch)| ch.is_alphanumeric() || ch == '_')
                    .count();
                let is_lifetime = ident_len > 0
                    && !rest[ident_len..].starts_with('\'')
                    && !rest.starts_with('\\');
                if is_lifetime {
                    let l = line;
                    advance!(1 + ident_len);
                    last_code_line = line;
                    out.tokens.push(Token {
                        text: TokenText::Lifetime,
                        line: l,
                    });
                } else {
                    let l = line;
                    advance!(char_literal_len(&src[i..]));
                    last_code_line = line;
                    out.tokens.push(Token {
                        text: TokenText::Literal,
                        line: l,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let rest = &src[i..];
                let len: usize = rest
                    .chars()
                    .take_while(|&ch| ch.is_alphanumeric() || ch == '_')
                    .map(char::len_utf8)
                    .sum();
                let l = line;
                let text = rest[..len].to_string();
                advance!(len);
                last_code_line = line;
                out.tokens.push(Token {
                    text: TokenText::Ident(text),
                    line: l,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (incl. suffixes like 1e9, 0xff_u64): swallow the
                // alphanumeric run plus any `.` directly between digits.
                let rest = &src[i..];
                let mut len = 0usize;
                let rb = rest.as_bytes();
                while len < rb.len() {
                    let b = rb[len] as char;
                    if b.is_alphanumeric() || b == '_' {
                        len += 1;
                    } else if b == '.'
                        && rb
                            .get(len + 1)
                            .is_some_and(|n| (*n as char).is_ascii_digit())
                    {
                        len += 1;
                    } else {
                        break;
                    }
                }
                let l = line;
                advance!(len);
                last_code_line = line;
                out.tokens.push(Token {
                    text: TokenText::Literal,
                    line: l,
                });
            }
            c => {
                let l = line;
                advance!(c.len_utf8());
                last_code_line = line;
                out.tokens.push(Token {
                    text: TokenText::Punct(c),
                    line: l,
                });
            }
        }
    }
    out
}

/// `true` when `rest` starts a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br#`, ...) rather than a plain identifier starting with r/b.
fn starts_string_prefix(rest: &str) -> bool {
    let b = rest.as_bytes();
    let mut j = 0;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > 0 && b.get(j) == Some(&b'"')
}

/// Length of the prefix up to and including the opening quote, plus the
/// number of `#`s in a raw-string guard.
fn string_prefix(rest: &str) -> (usize, usize) {
    let b = rest.as_bytes();
    let mut j = 0;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    let mut hashes = 0;
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
            hashes += 1;
        }
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    (j + 1, if raw { hashes } else { usize::MAX })
}

/// Byte length of a string starting at an opening `"`, including both
/// quotes. `hashes == usize::MAX` means a normal (escaped) string; any
/// other value means a raw string closed by `"` + that many `#`s.
fn string_len(s: &str, hashes: usize) -> usize {
    let b = s.as_bytes();
    debug_assert_eq!(b[0], b'"');
    let mut j = 1;
    if hashes == usize::MAX || hashes == 0 {
        let raw = hashes == 0;
        while j < b.len() {
            match b[j] {
                b'\\' if !raw => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
    } else {
        let close: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while j < b.len() {
            if b[j..].starts_with(&close) {
                return j + close.len();
            }
            j += 1;
        }
    }
    b.len()
}

/// Byte length of a char literal starting at `'`, including both quotes.
fn char_literal_len(s: &str) -> usize {
    let b = s.as_bytes();
    debug_assert_eq!(b[0], b'\'');
    let mut j = 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code_like_text() {
        let src = r##"
// HashMap in a comment
/* Instant::now() in a block /* nested */ comment */
let s = "HashMap::new()";
let r = r#"thread_rng "quoted""#;
let b = b"SystemTime";
real_ident();
"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "r", "let", "b", "real_ident"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
        assert!(lexed.comments[0].standalone);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.text == TokenText::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.text == TokenText::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nInstant::now();\n";
        let lexed = lex(src);
        let now = lexed.tokens.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(now.line, 3);
    }

    #[test]
    fn trailing_comment_is_not_standalone() {
        let lexed = lex("let x = 1; // detlint::allow(wall-clock, reason = \"r\")\n");
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.comments[0].standalone);
    }

    #[test]
    fn numeric_literals_with_suffixes_and_floats() {
        let src = "let x = 1e9 + 0xff_u64 + 3.25 + 7.;";
        // `7.` lexes as literal 7 + punct '.' — fine for pattern scanning.
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_punct('.')));
        assert_eq!(idents(src), ["let", "x"]);
    }
}
