//! Deterministic model of completion-based (io_uring-style) I/O.
//!
//! The paper's seven architectures all pay one kernel crossing per
//! syscall: every `read()`, every `write()` iteration, every
//! `epoll_wait` wakeup is its own modeled [`Burst::syscall`] submission.
//! Completion-based I/O changes the arithmetic: the application *stages*
//! submission-queue entries (SQEs) in user space for free, then one
//! `io_uring_enter` crossing submits the whole batch; the kernel
//! performs the operations and posts completion-queue entries (CQEs)
//! that the application reaps — again in user space, again batched.
//!
//! This crate models exactly that accounting, and nothing else:
//!
//! * a bounded submission ring ([`UringConfig::sq_depth`]) with an
//!   explicit backpressure signal ([`StageOutcome::Full`]) when staging
//!   outruns flushing;
//! * a cost curve for the flush crossing — base `io_uring_enter` cost
//!   plus a per-SQE submit increment plus the kernel-side work of each
//!   staged operation (supplied by the caller per SQE, since the cost
//!   model lives above this crate);
//! * a cost curve for the completion reap — base plus per-CQE;
//! * registered-buffer accounting: a fixed pool of pre-registered
//!   buffers ([`UringConfig::registered_buffers`]); writes that get one
//!   skip the kernel's user-page setup cost, writes that find the pool
//!   exhausted fall back to the copy path. The high-water mark is
//!   tracked so experiments can see pool pressure.
//!
//! The ring never touches a socket or a scheduler: the server
//! architecture that drives it (`asyncinv-servers`' proactor) owns the
//! actual byte movement and burst submission. Every counter in
//! [`UringCounters`] increments in exactly one method here, so a server
//! emitting one trace event per call site reconciles bitwise against
//! the counter deltas — the same invariant the rest of the workspace
//! audits (`asyncinv-obs`' `trace_audit`).

#![forbid(unsafe_code)]

use asyncinv_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a staged operation does when the kernel executes it.
///
/// The ring treats operations as opaque work items; the variants exist
/// so the driving architecture can route completions without a side
/// table. `conn` is the driver's connection index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read a completed request from a readable socket.
    Read {
        /// Driver connection index.
        conn: usize,
    },
    /// Write a response to a socket; the kernel pushes bytes until the
    /// send buffer fills, then keeps the operation in flight and
    /// completes it when the remaining bytes have been handed off.
    Write {
        /// Driver connection index.
        conn: usize,
        /// Response bytes to hand to the socket.
        bytes: usize,
    },
}

impl Op {
    /// The connection the operation targets.
    pub fn conn(self) -> usize {
        match self {
            Op::Read { conn } | Op::Write { conn, .. } => conn,
        }
    }

    /// Stable op code carried in `SqSubmit` trace events (`1` = read,
    /// `2` = write; mirrored by `asyncinv-obs`' span classifier).
    pub fn code(self) -> u64 {
        match self {
            Op::Read { .. } => SQ_OP_READ,
            Op::Write { .. } => SQ_OP_WRITE,
        }
    }
}

/// `SqSubmit` op code for a read SQE.
pub const SQ_OP_READ: u64 = 1;
/// `SqSubmit` op code for a write SQE.
pub const SQ_OP_WRITE: u64 = 2;

/// One submission-queue entry: the operation plus the kernel-side CPU
/// cost of executing it (computed by the caller from its service
/// profile) and whether it holds a registered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// The operation.
    pub op: Op,
    /// Kernel CPU time to execute the op inside the flush crossing.
    pub kernel_cost: SimDuration,
    /// Holds a slot of the registered-buffer pool (writes only).
    pub registered: bool,
}

/// One completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The completed operation.
    pub op: Op,
    /// Operation result (bytes read/written).
    pub result: usize,
}

/// Outcome of [`Ring::try_stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// The SQE is in the submission ring awaiting the next flush.
    Staged,
    /// The submission ring is full ([`UringConfig::sq_depth`] entries
    /// staged): the caller must flush before staging more. The failed
    /// SQE was *not* enqueued; `sq_full` was counted.
    Full,
}

/// Cost and shape parameters of the modeled ring.
///
/// The syscall-side defaults are calibrated against the workspace's
/// [`ServiceProfile`](https://docs.rs) defaults (DESIGN.md §14): one
/// `io_uring_enter` costs a little less than a `read()` (3 µs vs 6 µs
/// — no fd lookup per byte stream, but ring bookkeeping), each
/// additional SQE in the batch amortizes to 500 ns of submit work, and
/// reaping is user-space tail latency (600 ns + 300 ns per CQE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UringConfig {
    /// Submission ring depth; staging past this forces a flush
    /// ([`StageOutcome::Full`]).
    pub sq_depth: usize,
    /// Completion ring nominal depth. The model never drops CQEs (the
    /// kernel's overflow path is lossless since 5.5); the depth is used
    /// for high-water accounting only.
    pub cq_depth: usize,
    /// Base kernel-crossing cost of one `io_uring_enter` (system time).
    pub enter_base: SimDuration,
    /// Kernel submit cost per SQE in the flushed batch (system time).
    pub enter_per_sqe: SimDuration,
    /// User-space cost to begin a reap pass (barrier load, wakeup).
    pub reap_base: SimDuration,
    /// User-space cost per CQE reaped (user time).
    pub reap_per_cqe: SimDuration,
    /// Registered-buffer pool size. Zero disables the pool: every write
    /// pays the unregistered page-setup cost.
    pub registered_buffers: usize,
}

impl Default for UringConfig {
    fn default() -> Self {
        UringConfig {
            sq_depth: 64,
            cq_depth: 128,
            enter_base: SimDuration::from_nanos(3_000),
            enter_per_sqe: SimDuration::from_nanos(500),
            reap_base: SimDuration::from_nanos(600),
            reap_per_cqe: SimDuration::from_nanos(300),
            registered_buffers: 64,
        }
    }
}

impl UringConfig {
    /// Checks the knobs for structural validity.
    pub fn validate(&self) -> Result<(), String> {
        if self.sq_depth == 0 {
            return Err("sq_depth must be positive".into());
        }
        if self.cq_depth == 0 {
            return Err("cq_depth must be positive".into());
        }
        Ok(())
    }
}

/// Monotone counters of ring activity.
///
/// `Copy`, so window snapshots are bitwise copies; experiments snapshot
/// at the warm-up boundary and subtract ([`UringCounters::delta_since`])
/// exactly like the CPU and TCP stats. Each field increments in exactly
/// one [`Ring`] method (named in the field docs), which is what lets the
/// proactor emit one trace event per increment and the audit reconcile
/// the two paths bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UringCounters {
    /// SQEs staged into the submission ring ([`Ring::try_stage`] →
    /// [`StageOutcome::Staged`]).
    pub sq_submits: u64,
    /// `io_uring_enter` flush crossings ([`Ring::begin_flush`]).
    pub sq_flushes: u64,
    /// SQEs carried by those flushes (for batch-size analysis).
    // detlint::allow(counter-unaudited, reason = "batch-size analysis detail; the flush crossings it rides on are audited via sq_flushes")
    pub flushed_sqes: u64,
    /// Reap passes ([`Ring::reap`] on a non-empty completion ring).
    pub cq_reaps: u64,
    /// CQEs drained by those passes.
    // detlint::allow(counter-unaudited, reason = "reap-batch detail; the reap passes it rides on are audited via cq_reaps")
    pub reaped_cqes: u64,
    /// Staging attempts that found the submission ring full
    /// ([`Ring::try_stage`] → [`StageOutcome::Full`]).
    pub sq_full: u64,
    /// High-water mark of registered buffers simultaneously held.
    // detlint::allow(counter-unaudited, reason = "high-water gauge, not an event count; exported as the sXX/buf_high_water registry counter")
    pub buf_high_water: u64,
    /// Writes that wanted a registered buffer but found the pool empty.
    // detlint::allow(counter-unaudited, reason = "pool-sizing diagnostic; fallback writes still traverse the audited write path")
    pub buf_fallbacks: u64,
    /// High-water mark of unreaped CQEs (pressure on `cq_depth`).
    // detlint::allow(counter-unaudited, reason = "high-water gauge, not an event count; exported as the sXX/cq_high_water registry counter")
    pub cq_high_water: u64,
}

impl UringCounters {
    /// The difference `self - earlier`, for window-based measurement.
    /// High-water marks don't subtract: the later mark is kept.
    pub fn delta_since(&self, earlier: &UringCounters) -> UringCounters {
        UringCounters {
            sq_submits: self.sq_submits - earlier.sq_submits,
            sq_flushes: self.sq_flushes - earlier.sq_flushes,
            flushed_sqes: self.flushed_sqes - earlier.flushed_sqes,
            cq_reaps: self.cq_reaps - earlier.cq_reaps,
            reaped_cqes: self.reaped_cqes - earlier.reaped_cqes,
            sq_full: self.sq_full - earlier.sq_full,
            buf_high_water: self.buf_high_water,
            buf_fallbacks: self.buf_fallbacks - earlier.buf_fallbacks,
            cq_high_water: self.cq_high_water,
        }
    }

    /// Accumulates another counter set (for summing per-worker rings).
    pub fn accumulate(&mut self, other: &UringCounters) {
        self.sq_submits += other.sq_submits;
        self.sq_flushes += other.sq_flushes;
        self.flushed_sqes += other.flushed_sqes;
        self.cq_reaps += other.cq_reaps;
        self.reaped_cqes += other.reaped_cqes;
        self.sq_full += other.sq_full;
        self.buf_high_water = self.buf_high_water.max(other.buf_high_water);
        self.buf_fallbacks += other.buf_fallbacks;
        self.cq_high_water = self.cq_high_water.max(other.cq_high_water);
    }
}

/// A flushed batch: what one `io_uring_enter` crossing carries.
#[derive(Debug, Clone)]
pub struct FlushBatch {
    /// The SQEs submitted, in staging order.
    pub sqes: Vec<Sqe>,
    /// Total system-time cost of the crossing: `enter_base +
    /// enter_per_sqe × n + Σ kernel_cost`.
    pub cost: SimDuration,
}

/// One submission/completion ring pair (one per event-loop worker).
#[derive(Debug, Clone)]
pub struct Ring {
    cfg: UringConfig,
    sq: Vec<Sqe>,
    cq: VecDeque<Cqe>,
    bufs_in_use: usize,
    counters: UringCounters,
}

impl Ring {
    /// A fresh ring.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: UringConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid UringConfig: {e}");
        }
        let sq_depth = cfg.sq_depth;
        Ring {
            cfg,
            sq: Vec::with_capacity(sq_depth),
            cq: VecDeque::new(),
            bufs_in_use: 0,
            counters: UringCounters::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &UringConfig {
        &self.cfg
    }

    /// Counters so far (cumulative since ring creation).
    pub fn counters(&self) -> UringCounters {
        self.counters
    }

    /// SQEs currently staged and awaiting a flush.
    pub fn staged_len(&self) -> usize {
        self.sq.len()
    }

    /// CQEs currently posted and awaiting a reap.
    pub fn cq_len(&self) -> usize {
        self.cq.len()
    }

    /// Registered buffers currently held by in-flight writes.
    pub fn bufs_in_use(&self) -> usize {
        self.bufs_in_use
    }

    /// Tries to acquire a registered buffer for a write about to be
    /// staged. Returns `false` (and counts the fallback) when the pool
    /// is exhausted or disabled; the caller then prices the SQE with the
    /// unregistered copy cost and stages it with `registered: false`.
    pub fn acquire_buf(&mut self) -> bool {
        if self.bufs_in_use < self.cfg.registered_buffers {
            self.bufs_in_use += 1;
            self.counters.buf_high_water = self.counters.buf_high_water.max(self.bufs_in_use as u64);
            true
        } else {
            self.counters.buf_fallbacks += 1;
            false
        }
    }

    /// Stages one SQE, or reports the ring full.
    pub fn try_stage(&mut self, sqe: Sqe) -> StageOutcome {
        if self.sq.len() >= self.cfg.sq_depth {
            self.counters.sq_full += 1;
            return StageOutcome::Full;
        }
        self.counters.sq_submits += 1;
        self.sq.push(sqe);
        StageOutcome::Staged
    }

    /// Drains the staged SQEs into one flush batch and prices the
    /// kernel crossing. Counts one flush; the caller models the
    /// crossing as a single syscall burst of `batch.cost` and then
    /// executes the operations.
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged (a flush with no SQEs is a driver
    /// bug — the real syscall would be a pointless crossing).
    pub fn begin_flush(&mut self) -> FlushBatch {
        assert!(!self.sq.is_empty(), "flush with an empty submission ring");
        let sqes = std::mem::take(&mut self.sq);
        self.counters.sq_flushes += 1;
        self.counters.flushed_sqes += sqes.len() as u64;
        let mut cost = self.cfg.enter_base + self.cfg.enter_per_sqe * sqes.len() as u64;
        for s in &sqes {
            cost += s.kernel_cost;
        }
        FlushBatch { sqes, cost }
    }

    /// Posts a completion for a finished operation, releasing its
    /// registered buffer if it held one.
    pub fn complete(&mut self, op: Op, result: usize, registered: bool) {
        if registered {
            debug_assert!(self.bufs_in_use > 0, "buffer release without acquire");
            self.bufs_in_use -= 1;
        }
        self.cq.push_back(Cqe { op, result });
        self.counters.cq_high_water = self.counters.cq_high_water.max(self.cq.len() as u64);
    }

    /// Drains every posted CQE as one reap pass and prices the
    /// user-space work. Counts one reap.
    ///
    /// # Panics
    ///
    /// Panics if the completion ring is empty (drivers check `cq_len`
    /// first; an empty reap would skew the batch-size accounting).
    pub fn reap(&mut self) -> (Vec<Cqe>, SimDuration) {
        assert!(!self.cq.is_empty(), "reap with an empty completion ring");
        let cqes: Vec<Cqe> = self.cq.drain(..).collect();
        self.counters.cq_reaps += 1;
        self.counters.reaped_cqes += cqes.len() as u64;
        let cost = self.cfg.reap_base + self.cfg.reap_per_cqe * cqes.len() as u64;
        (cqes, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn ring() -> Ring {
        Ring::new(UringConfig::default())
    }

    #[test]
    fn stage_flush_reap_roundtrip() {
        let mut r = ring();
        assert_eq!(
            r.try_stage(Sqe {
                op: Op::Read { conn: 3 },
                kernel_cost: us(6),
                registered: false
            }),
            StageOutcome::Staged
        );
        assert_eq!(r.staged_len(), 1);
        let batch = r.begin_flush();
        assert_eq!(batch.sqes.len(), 1);
        // enter_base 3us + per_sqe 0.5us + kernel 6us.
        assert_eq!(batch.cost, SimDuration::from_nanos(9_500));
        assert_eq!(r.staged_len(), 0);
        r.complete(batch.sqes[0].op, 128, false);
        assert_eq!(r.cq_len(), 1);
        let (cqes, cost) = r.reap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].op, Op::Read { conn: 3 });
        assert_eq!(cqes[0].result, 128);
        assert_eq!(cost, SimDuration::from_nanos(900));
        let c = r.counters();
        assert_eq!(c.sq_submits, 1);
        assert_eq!(c.sq_flushes, 1);
        assert_eq!(c.flushed_sqes, 1);
        assert_eq!(c.cq_reaps, 1);
        assert_eq!(c.reaped_cqes, 1);
        assert_eq!(c.sq_full, 0);
    }

    #[test]
    fn batched_flush_amortizes_the_crossing() {
        let mut r = ring();
        for i in 0..8 {
            r.try_stage(Sqe {
                op: Op::Read { conn: i },
                kernel_cost: us(6),
                registered: false,
            });
        }
        let batch = r.begin_flush();
        // One crossing for 8 ops: 3 + 8*0.5 + 8*6 = 55us, versus 8
        // separate read() crossings at 6us base each.
        assert_eq!(batch.cost, us(55));
        assert_eq!(r.counters().sq_flushes, 1);
        assert_eq!(r.counters().flushed_sqes, 8);
    }

    #[test]
    fn sq_full_backpressure() {
        let mut r = Ring::new(UringConfig {
            sq_depth: 2,
            ..UringConfig::default()
        });
        let sqe = Sqe {
            op: Op::Read { conn: 0 },
            kernel_cost: us(1),
            registered: false,
        };
        assert_eq!(r.try_stage(sqe), StageOutcome::Staged);
        assert_eq!(r.try_stage(sqe), StageOutcome::Staged);
        assert_eq!(r.try_stage(sqe), StageOutcome::Full);
        assert_eq!(r.counters().sq_full, 1);
        assert_eq!(r.counters().sq_submits, 2);
        // A flush frees the ring.
        let _ = r.begin_flush();
        assert_eq!(r.try_stage(sqe), StageOutcome::Staged);
    }

    #[test]
    fn registered_buffer_pool_accounting() {
        let mut r = Ring::new(UringConfig {
            registered_buffers: 2,
            ..UringConfig::default()
        });
        assert!(r.acquire_buf());
        assert!(r.acquire_buf());
        assert!(!r.acquire_buf(), "pool exhausted");
        assert_eq!(r.counters().buf_high_water, 2);
        assert_eq!(r.counters().buf_fallbacks, 1);
        // Completion of a registered write releases its slot.
        r.complete(Op::Write { conn: 0, bytes: 10 }, 10, true);
        assert_eq!(r.bufs_in_use(), 1);
        assert!(r.acquire_buf());
    }

    #[test]
    fn counters_delta_and_accumulate() {
        let a = UringCounters {
            sq_submits: 10,
            sq_flushes: 4,
            flushed_sqes: 10,
            cq_reaps: 3,
            reaped_cqes: 9,
            sq_full: 1,
            buf_high_water: 5,
            buf_fallbacks: 2,
            cq_high_water: 4,
        };
        let b = UringCounters {
            sq_submits: 4,
            sq_flushes: 2,
            flushed_sqes: 4,
            cq_reaps: 1,
            reaped_cqes: 3,
            sq_full: 0,
            buf_high_water: 3,
            buf_fallbacks: 1,
            cq_high_water: 2,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.sq_submits, 6);
        assert_eq!(d.sq_flushes, 2);
        assert_eq!(d.cq_reaps, 2);
        assert_eq!(d.sq_full, 1);
        assert_eq!(d.buf_high_water, 5, "high-water keeps the later mark");
        let mut sum = b;
        sum.accumulate(&a);
        assert_eq!(sum.sq_submits, 14);
        assert_eq!(sum.buf_high_water, 5);
    }

    #[test]
    fn empty_flush_and_reap_panic() {
        let r = ring();
        assert_eq!(r.staged_len(), 0);
        let result = std::panic::catch_unwind(|| {
            let mut r = Ring::new(UringConfig::default());
            r.begin_flush()
        });
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| {
            let mut r = Ring::new(UringConfig::default());
            r.reap()
        });
        assert!(result.is_err());
    }

    #[test]
    fn op_codes_are_stable() {
        assert_eq!(Op::Read { conn: 0 }.code(), SQ_OP_READ);
        assert_eq!(Op::Write { conn: 0, bytes: 1 }.code(), SQ_OP_WRITE);
        assert_eq!(SQ_OP_READ, 1);
        assert_eq!(SQ_OP_WRITE, 2);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(UringConfig {
            sq_depth: 0,
            ..UringConfig::default()
        }
        .validate()
        .is_err());
    }
}
