//! One preset per table and figure of the paper's evaluation.
//!
//! Each function runs the exact workload/parameter grid of the
//! corresponding paper artifact and returns structured results; the
//! `asyncinv-bench` binaries render them as text tables. All presets are
//! deterministic. [`Fidelity::Quick`] shrinks warm-up/measurement windows
//! for CI; [`Fidelity::Full`] matches the defaults used for the numbers in
//! `EXPERIMENTS.md`.

use asyncinv_metrics::RunSummary;
use asyncinv_servers::rubbos_engine::{RubbosExperiment, RubbosSummary};
use asyncinv_servers::{Experiment, ExperimentConfig, ServerKind};
use asyncinv_simcore::SimDuration;
use asyncinv_tcp::SendBufPolicy;
use asyncinv_workload::Mix;

/// How long to warm up and measure each cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Short windows for CI and doc tests.
    Quick,
    /// The windows used for the recorded EXPERIMENTS.md numbers.
    Full,
}

impl Fidelity {
    /// (warmup, measure) for micro cells.
    pub fn micro_windows(self) -> (SimDuration, SimDuration) {
        match self {
            Fidelity::Quick => (SimDuration::from_millis(300), SimDuration::from_secs(2)),
            Fidelity::Full => (SimDuration::from_secs(2), SimDuration::from_secs(10)),
        }
    }

    /// (warmup, measure) for RUBBoS macro cells.
    pub fn macro_windows(self) -> (SimDuration, SimDuration) {
        match self {
            Fidelity::Quick => (SimDuration::from_secs(8), SimDuration::from_secs(15)),
            Fidelity::Full => (SimDuration::from_secs(20), SimDuration::from_secs(40)),
        }
    }

    /// A micro cell config at this fidelity's windows (used by the
    /// [`runner`](crate::runner) to materialize grid cells).
    pub fn micro(self, concurrency: usize, bytes: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::micro(concurrency, bytes);
        let (w, m) = self.micro_windows();
        cfg.warmup = w;
        cfg.measure = m;
        cfg
    }

    fn mixed(self, concurrency: usize, mix: Mix) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::with_mix(concurrency, mix);
        let (w, m) = self.micro_windows();
        cfg.warmup = w;
        cfg.measure = m;
        cfg
    }
}

/// The paper's three representative response sizes (bytes).
pub const SIZES: [usize; 3] = [100, 10 * 1024, 100 * 1024];

/// The concurrency sweep of Figs 2 and 4 (1–3200, doubling).
pub const CONCURRENCIES: [usize; 9] = [1, 8, 16, 64, 200, 400, 800, 1600, 3200];

/// **Fig 1** — RUBBoS throughput/response time vs. number of users for the
/// thread-based (Tomcat 7) and asynchronous (Tomcat 8) application tiers.
pub fn fig01_rubbos(fid: Fidelity, users: &[usize]) -> Vec<RubbosSummary> {
    let mut out = Vec::new();
    for &u in users {
        for kind in [ServerKind::SyncThread, ServerKind::AsyncPool] {
            let mut e = RubbosExperiment::new(u);
            let (w, m) = fid.macro_windows();
            e.warmup = w;
            e.measure = m;
            out.push(e.run(kind));
        }
    }
    out
}

/// **Table I** — context switches per request, TomcatAsync vs TomcatSync,
/// at workload concurrency 8 for the three response sizes. Uses the
/// real-NIO Tomcat model (the paper profiles the full servers here).
pub fn table1_context_switches(fid: Fidelity) -> Vec<RunSummary> {
    let mut out = Vec::new();
    for &size in &SIZES {
        for kind in [ServerKind::AsyncPool, ServerKind::SyncThread] {
            let mut cfg = fid.micro(8, size);
            cfg.tomcat_real_nio = true;
            out.push(Experiment::new(cfg).run(kind));
        }
    }
    out
}

/// **Fig 2** — throughput vs. workload concurrency, thread-based vs
/// asynchronous Tomcat, for the three response sizes.
pub fn fig02_sync_vs_async(fid: Fidelity, concurrencies: &[usize]) -> Vec<RunSummary> {
    sweep(
        fid,
        &[ServerKind::SyncThread, ServerKind::AsyncPool],
        &SIZES,
        concurrencies,
    )
}

/// **Table II** — context switches per request by design, measured at
/// concurrency 1 (4 / 2 / 0 / 0).
pub fn table2_cs_per_request(fid: Fidelity) -> Vec<RunSummary> {
    [
        ServerKind::AsyncPool,
        ServerKind::AsyncPoolFix,
        ServerKind::SyncThread,
        ServerKind::SingleThread,
    ]
    .iter()
    .map(|&k| Experiment::new(fid.micro(1, 100)).run(k))
    .collect()
}

/// **Fig 4** — throughput and context-switch rates for the four simplified
/// architectures across concurrencies and response sizes.
pub fn fig04_four_archetypes(fid: Fidelity, concurrencies: &[usize]) -> Vec<RunSummary> {
    sweep(
        fid,
        &[
            ServerKind::SyncThread,
            ServerKind::AsyncPool,
            ServerKind::AsyncPoolFix,
            ServerKind::SingleThread,
        ],
        &SIZES,
        concurrencies,
    )
}

/// **Table III** — CPU user/system split at concurrency 100 for 0.1 KB and
/// 100 KB responses, sTomcat-Sync vs SingleT-Async.
pub fn table3_cpu_split(fid: Fidelity) -> Vec<RunSummary> {
    let mut out = Vec::new();
    for &size in &[100usize, 100 * 1024] {
        for kind in [ServerKind::SyncThread, ServerKind::SingleThread] {
            out.push(Experiment::new(fid.micro(100, size)).run(kind));
        }
    }
    out
}

/// **Table IV** — `socket.write()` calls per request in SingleT-Async for
/// the three response sizes.
pub fn table4_write_spin(fid: Fidelity) -> Vec<RunSummary> {
    SIZES
        .iter()
        .map(|&s| Experiment::new(fid.micro(4, s)).run(ServerKind::SingleThread))
        .collect()
}

/// **Fig 6** — SingleT-Async sending 100 KB responses at concurrency 100:
/// kernel auto-tuned send buffer vs a fixed 100 KB buffer, across added
/// latencies (µs, one-way).
pub fn fig06_autotuning(fid: Fidelity, latencies_us: &[u64]) -> Vec<RunSummary> {
    let mut out = Vec::new();
    for &lat in latencies_us {
        for (label, policy) in [
            (
                "auto-tune",
                SendBufPolicy::AutoTune {
                    min: 16 * 1024,
                    max: 4 * 1024 * 1024,
                },
            ),
            ("fixed-100KB", SendBufPolicy::Fixed(100 * 1024)),
        ] {
            let mut cfg = fid.micro(100, 100 * 1024);
            cfg.tcp.send_buf = policy;
            cfg.tcp.added_latency = SimDuration::from_micros(lat);
            let mut s = Experiment::new(cfg).run(ServerKind::SingleThread);
            s.server = format!("SingleT-Async/{label}");
            out.push(s);
        }
    }
    out
}

/// **Fig 7** — throughput and response time vs. added network latency at
/// concurrency 100 with 100 KB responses, for four architectures.
pub fn fig07_latency(fid: Fidelity, latencies_us: &[u64]) -> Vec<RunSummary> {
    let kinds = [
        ServerKind::SyncThread,
        ServerKind::AsyncPoolFix,
        ServerKind::SingleThread,
        ServerKind::NettyLike,
    ];
    let mut out = Vec::new();
    for &lat in latencies_us {
        for kind in kinds {
            let cfg = fid
                .micro(100, 100 * 1024)
                .with_latency(SimDuration::from_micros(lat));
            out.push(Experiment::new(cfg).run(kind));
        }
    }
    out
}

/// **Fig 9** — NettyServer vs SingleT-Async vs sTomcat-Sync across
/// concurrencies for (a) 100 KB and (b) 0.1 KB responses.
pub fn fig09_netty(fid: Fidelity, concurrencies: &[usize]) -> Vec<RunSummary> {
    sweep(
        fid,
        &[
            ServerKind::NettyLike,
            ServerKind::SingleThread,
            ServerKind::SyncThread,
        ],
        &[100 * 1024, 100],
        concurrencies,
    )
}

/// **Fig 11** — normalized throughput vs. percentage of heavy requests at
/// concurrency 100, with and without added latency.
pub fn fig11_hybrid(fid: Fidelity, heavy_pcts: &[u32], latency_us: u64) -> Vec<RunSummary> {
    let kinds = [
        ServerKind::Hybrid,
        ServerKind::SingleThread,
        ServerKind::NettyLike,
    ];
    let mut out = Vec::new();
    for &pct in heavy_pcts {
        assert!(pct <= 100, "heavy percentage out of range: {pct}");
        let mix = Mix::heavy_light(pct as f64 / 100.0);
        for kind in kinds {
            let cfg = fid
                .mixed(100, mix.clone())
                .with_latency(SimDuration::from_micros(latency_us));
            let mut s = Experiment::new(cfg).run(kind);
            // Encode the x-axis in the summary for the harness tables.
            s.response_size = pct as usize;
            out.push(s);
        }
    }
    out
}

/// Generic (server × size × concurrency) sweep used by several figures.
pub fn sweep(
    fid: Fidelity,
    kinds: &[ServerKind],
    sizes: &[usize],
    concurrencies: &[usize],
) -> Vec<RunSummary> {
    let cells = cell_grid(kinds, sizes, concurrencies);
    crate::runner::run_cells(fid, &cells, crate::runner::configured_threads())
}

/// The (kind, size, concurrency) grid in output order.
fn cell_grid(
    kinds: &[ServerKind],
    sizes: &[usize],
    concurrencies: &[usize],
) -> Vec<(ServerKind, usize, usize)> {
    let mut cells = Vec::new();
    for &size in sizes {
        for &conc in concurrencies {
            for &kind in kinds {
                cells.push((kind, size, conc));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_quick_matches_design() {
        let rows = table2_cs_per_request(Fidelity::Quick);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.server == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        assert!((by_name("sTomcat-Async").cs_per_req - 4.0).abs() < 0.2);
        assert!((by_name("sTomcat-Async-Fix").cs_per_req - 2.0).abs() < 0.2);
        assert!(by_name("sTomcat-Sync").cs_per_req < 0.2);
        assert!(by_name("SingleT-Async").cs_per_req < 0.2);
    }

    #[test]
    fn table4_quick_shows_spin() {
        let rows = table4_write_spin(Fidelity::Quick);
        assert!((rows[0].writes_per_req - 1.0).abs() < 0.1); // 0.1 KB
        assert!((rows[1].writes_per_req - 1.0).abs() < 0.1); // 10 KB
        assert!(rows[2].writes_per_req > 20.0); // 100 KB spins
    }

    #[test]
    fn fig06_quick_autotune_loses() {
        let rows = fig06_autotuning(Fidelity::Quick, &[0]);
        let auto = &rows[0];
        let fixed = &rows[1];
        assert!(auto.server.contains("auto-tune"));
        assert!(
            fixed.throughput > auto.throughput,
            "fixed {} must beat auto-tuned {}",
            fixed.throughput,
            auto.throughput
        );
    }

    #[test]
    fn fig11_quick_hybrid_on_top() {
        let rows = fig11_hybrid(Fidelity::Quick, &[5], 0);
        let hybrid = rows.iter().find(|r| r.server == "HybridNetty").unwrap();
        for r in &rows {
            assert!(
                hybrid.throughput >= r.throughput * 0.999,
                "hybrid {} must top {} ({})",
                hybrid.throughput,
                r.server,
                r.throughput
            );
        }
    }
}
