//! `asyncinv` — command-line front end for running individual experiment
//! cells without writing Rust.
//!
//! ```sh
//! asyncinv list
//! asyncinv cell --server hybrid --conc 100 --size 100K --latency 5ms
//! asyncinv cell --server sync --size 10K --conc 64 --measure 5 --spin-limit 16
//! asyncinv cell --server netty --conc 8 --size 100K --dump-config cell.json
//! asyncinv cell --config cell.json --server netty   # replay a saved cell
//! asyncinv cell --server hybrid --json results.json # machine-readable out
//! asyncinv rubbos --users 9000 --server async
//! ```
//!
//! Flags use plain `--key value` pairs (no external CLI dependency). Sizes
//! accept `K`/`M` suffixes, latency accepts `ms`/`us`.

use asyncinv::prelude::*;
use asyncinv::rubbos::RubbosExperiment;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available servers:");
            for k in ServerKind::ALL {
                println!("  {:<12} {}", flag_name(k), k.paper_name());
            }
            ExitCode::SUCCESS
        }
        Some("cell") => match run_cell(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("rubbos") => match run_rubbos(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        _ => {
            eprintln!(
                "usage: asyncinv <list|cell|rubbos> [--server S] [--conc N] \
                 [--size BYTES[K|M]] [--latency D(ms|us)] [--measure SECS] \
                 [--warmup SECS] [--cores N] [--sndbuf BYTES[K|M]|auto] \
                 [--spin-limit N] [--seed N] [--users N]"
            );
            ExitCode::from(2)
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(1)
}

fn flag_name(k: ServerKind) -> &'static str {
    match k {
        ServerKind::SyncThread => "sync",
        ServerKind::AsyncPool => "async",
        ServerKind::AsyncPoolFix => "async-fix",
        ServerKind::SingleThread => "single",
        ServerKind::NettyLike => "netty",
        ServerKind::Hybrid => "hybrid",
        ServerKind::Staged => "staged",
        ServerKind::Proactor => "proactor",
    }
}

fn parse_server(s: &str) -> Result<ServerKind, String> {
    ServerKind::ALL
        .into_iter()
        .find(|k| flag_name(*k) == s || k.paper_name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown server '{s}' (try `asyncinv list`)"))
}

/// Parses `--key value` pairs.
fn opts(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{k}'"))?;
        let v = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        out.push((key.to_string(), v.clone()));
    }
    Ok(out)
}

fn parse_size(s: &str) -> Result<usize, String> {
    let (num, mul) = match s.to_ascii_uppercase() {
        ref u if u.ends_with('K') => (&s[..s.len() - 1], 1024),
        ref u if u.ends_with('M') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<usize>()
        .map(|n| n * mul)
        .map_err(|_| format!("bad size '{s}'"))
}

fn parse_latency(s: &str) -> Result<SimDuration, String> {
    if let Some(ms) = s.strip_suffix("ms") {
        ms.parse::<u64>()
            .map(SimDuration::from_millis)
            .map_err(|_| format!("bad latency '{s}'"))
    } else if let Some(us) = s.strip_suffix("us") {
        us.parse::<u64>()
            .map(SimDuration::from_micros)
            .map_err(|_| format!("bad latency '{s}'"))
    } else {
        Err(format!("latency '{s}' needs a ms/us suffix"))
    }
}

fn run_cell(args: &[String]) -> Result<(), String> {
    let mut server = ServerKind::Hybrid;
    let mut conc = 8usize;
    let mut size = 100usize;
    let mut base_cfg: Option<ExperimentConfig> = None;
    let mut dump_to: Option<String> = None;
    let mut json_to: Option<String> = None;
    let mut cfg_mods: Vec<(String, String)> = Vec::new();
    for (k, v) in opts(args)? {
        match k.as_str() {
            "server" => server = parse_server(&v)?,
            "conc" => conc = v.parse().map_err(|_| format!("bad conc '{v}'"))?,
            "size" => size = parse_size(&v)?,
            "config" => {
                let text = std::fs::read_to_string(&v)
                    .map_err(|e| format!("cannot read {v}: {e}"))?;
                base_cfg = Some(
                    serde_json::from_str(&text).map_err(|e| format!("bad config {v}: {e}"))?,
                );
            }
            "dump-config" => dump_to = Some(v),
            "json" => json_to = Some(v),
            _ => cfg_mods.push((k, v)),
        }
    }
    let mut cfg = base_cfg.unwrap_or_else(|| ExperimentConfig::micro(conc, size));
    for (k, v) in cfg_mods {
        match k.as_str() {
            "latency" => cfg.tcp.added_latency = parse_latency(&v)?,
            "measure" => {
                cfg.measure = SimDuration::from_secs(v.parse().map_err(|_| "bad measure")?)
            }
            "warmup" => cfg.warmup = SimDuration::from_secs(v.parse().map_err(|_| "bad warmup")?),
            "cores" => cfg.cpu.cores = v.parse().map_err(|_| "bad cores")?,
            "spin-limit" => cfg.write_spin_limit = v.parse().map_err(|_| "bad spin limit")?,
            "seed" => cfg.clients.seed = v.parse().map_err(|_| "bad seed")?,
            "sndbuf" => {
                cfg.tcp.send_buf = if v == "auto" {
                    SendBufPolicy::AutoTune {
                        min: 16 * 1024,
                        max: 4 * 1024 * 1024,
                    }
                } else {
                    SendBufPolicy::Fixed(parse_size(&v)?)
                };
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if let Some(path) = dump_to {
        let text = serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote experiment config to {path}");
        return Ok(());
    }
    let s = Experiment::new(cfg).run(server);
    if let Some(path) = json_to {
        let text = serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("server        : {}", s.server);
    println!("concurrency   : {}", s.concurrency);
    println!("response size : {} B", s.response_size);
    println!("added latency : {} us (one-way)", s.added_latency_us);
    println!("throughput    : {:.1} req/s ({} completions)", s.throughput, s.completions);
    println!(
        "response time : mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        s.mean_rt_us as f64 / 1000.0,
        s.p50_rt_us as f64 / 1000.0,
        s.p99_rt_us as f64 / 1000.0
    );
    println!(
        "context sw    : {:.2}/req ({:.0}/s)",
        s.cs_per_req, s.cs_per_sec
    );
    println!(
        "write calls   : {:.2}/req ({:.2} zero-return spins/req)",
        s.writes_per_req, s.spins_per_req
    );
    println!(
        "cpu           : {:.1}% busy ({:.1}% user / {:.1}% sys of capacity)",
        s.cpu.utilization() * 100.0,
        s.cpu.user * 100.0,
        s.cpu.sys * 100.0
    );
    let findings = asyncinv::advisor::diagnose(&s);
    if findings.is_empty() {
        println!("diagnosis     : healthy");
    } else {
        println!("diagnosis     :");
        for f in findings {
            println!("  - {f}");
        }
    }
    Ok(())
}

fn run_rubbos(args: &[String]) -> Result<(), String> {
    let mut server = ServerKind::SyncThread;
    let mut users = 5000usize;
    let mut measure: Option<u64> = None;
    for (k, v) in opts(args)? {
        match k.as_str() {
            "server" => server = parse_server(&v)?,
            "users" => users = v.parse().map_err(|_| format!("bad users '{v}'"))?,
            "measure" => measure = Some(v.parse().map_err(|_| "bad measure")?),
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if !matches!(server, ServerKind::SyncThread | ServerKind::AsyncPool) {
        return Err("rubbos compares --server sync (Tomcat 7) and --server async (Tomcat 8)".into());
    }
    let mut e = RubbosExperiment::new(users);
    if let Some(m) = measure {
        e.measure = SimDuration::from_secs(m);
    }
    let s = e.run(server);
    println!("tomcat        : {}", s.server);
    println!("users         : {}", s.users);
    println!("throughput    : {:.1} req/s ({} completions)", s.throughput, s.completions);
    println!("response time : mean {:.1} ms, p99 {:.1} ms", s.mean_rt_ms, s.p99_rt_ms);
    println!("tomcat cpu    : {:.1}%", s.tomcat_cpu * 100.0);
    println!("ctx switches  : {:.0}/s", s.cs_per_sec);
    println!("mysql util    : {:.1}%", s.db_util * 100.0);
    Ok(())
}
