//! A rule-based performance advisor encoding the paper's lessons.
//!
//! The paper's conclusion is that "building high performance asynchronous
//! event-driven servers needs to take both the event processing flow and
//! the runtime varying workload/network conditions into consideration" —
//! i.e. an operator must *recognize* the context-switch and write-spin
//! pathologies from runtime metrics and pick the right mitigation. This
//! module automates that recognition over a measured [`RunSummary`]:
//! each [`Finding`] names the diagnosed pathology, the evidence, and the
//! remedy the paper evaluates for it.

use asyncinv_metrics::RunSummary;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A diagnosed performance pathology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pathology {
    /// Non-blocking writes against a full send buffer (paper Section IV):
    /// many `socket.write()` calls and zero-returns per request.
    WriteSpin,
    /// Dispatch-heavy event processing flow (paper Section III): several
    /// user-space context switches per request.
    DispatchOverhead,
    /// The write-spin multiplied by network latency (paper Section IV-B):
    /// response times far above the no-latency service time while CPU is
    /// saturated with write calls.
    LatencyAmplifiedSpin,
    /// Light requests queueing behind heavy in-progress responses
    /// (visible in the per-class breakdown).
    HeadOfLineBlocking,
    /// The measurement itself is questionable: unstable per-second rate.
    UnsteadyMeasurement,
}

impl fmt::Display for Pathology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pathology::WriteSpin => "write-spin",
            Pathology::DispatchOverhead => "dispatch overhead",
            Pathology::LatencyAmplifiedSpin => "latency-amplified write-spin",
            Pathology::HeadOfLineBlocking => "head-of-line blocking",
            Pathology::UnsteadyMeasurement => "unsteady measurement",
        };
        f.write_str(s)
    }
}

/// One advisor finding: what was detected, why, and what the paper says
/// to do about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The diagnosed pathology.
    pub pathology: Pathology,
    /// The metric evidence, human-readable.
    pub evidence: String,
    /// The paper-backed remedy.
    pub remedy: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — remedy: {}",
            self.pathology, self.evidence, self.remedy
        )
    }
}

/// Diagnoses a measured run. Returns an empty vector for a healthy run.
///
/// ```
/// use asyncinv::advisor::{diagnose, Pathology};
/// use asyncinv::RunSummary;
///
/// let run = RunSummary {
///     writes_per_req: 70.0,
///     spins_per_req: 60.0,
///     ..RunSummary::default()
/// };
/// let findings = diagnose(&run);
/// assert!(findings.iter().any(|f| f.pathology == Pathology::WriteSpin));
/// ```
pub fn diagnose(run: &RunSummary) -> Vec<Finding> {
    let mut findings = Vec::new();

    // A bounded-spin server legitimately sees a couple of zero-returns per
    // buffer-drain round (that is how it decides to park); the pathology is
    // *polling volume*: tens of wasted calls per request.
    if run.spins_per_req > 20.0 {
        findings.push(Finding {
            pathology: Pathology::WriteSpin,
            evidence: format!(
                "{:.1} write() calls/request with {:.1} zero-returns — responses \
                 exceed the send buffer and the writer polls the buffer drain",
                run.writes_per_req, run.spins_per_req
            ),
            remedy: "bound the spin (Netty writeSpinCount + park on writability), \
                     or size SO_SNDBUF to the response, or route this request \
                     class down a blocking/bounded path (HybridNetty)"
                .into(),
        });
    }

    if run.cs_per_req > 1.5 {
        findings.push(Finding {
            pathology: Pathology::DispatchOverhead,
            evidence: format!(
                "{:.1} context switches/request — the event processing flow \
                 hands each request between threads repeatedly",
                run.cs_per_req
            ),
            remedy: "merge read/write handling into one worker (sTomcat-Async-Fix) \
                     or let workers own connections outright (Netty's reactor \
                     redesign)"
                .into(),
        });
    }

    // Latency-amplified spin: spinning plus response times much larger than
    // the added latency alone explains, with the added latency present.
    if run.added_latency_us > 0
        && run.spins_per_req > 20.0
        && run.mean_rt_us > 10 * run.added_latency_us
    {
        findings.push(Finding {
            pathology: Pathology::LatencyAmplifiedSpin,
            evidence: format!(
                "{} µs of injected latency turned into {} µs mean response time \
                 with {:.0} spins/request — every buffer refill waits a full RTT",
                run.added_latency_us, run.mean_rt_us, run.spins_per_req
            ),
            remedy: "never spin unboundedly on WAN paths: park the write and \
                     serve other connections (bounded spin), or use blocking \
                     writes on dedicated threads"
                .into(),
        });
    }

    // Head-of-line blocking: a light class whose p99 dwarfs its own mean
    // while a heavy class shares the loop.
    if run.per_class.len() >= 2 {
        let heavy_present = run
            .per_class
            .iter()
            .any(|c| c.response_bytes >= 64 * 1024 && c.completions > 0);
        for c in &run.per_class {
            if heavy_present
                && c.response_bytes < 16 * 1024
                && c.completions > 0
                && c.p99_rt_us > 20 * c.mean_rt_us.max(1)
            {
                findings.push(Finding {
                    pathology: Pathology::HeadOfLineBlocking,
                    evidence: format!(
                        "light class '{}' p99 {} µs vs mean {} µs while heavy \
                         responses share the event loop",
                        c.class, c.p99_rt_us, c.mean_rt_us
                    ),
                    remedy: "bound per-connection write passes so light requests \
                             overtake (Netty/HybridNetty park mid-response)"
                        .into(),
                });
            }
        }
    }

    if run.rate_cv > 0.3 && run.completions > 0 {
        findings.push(Finding {
            pathology: Pathology::UnsteadyMeasurement,
            evidence: format!(
                "per-second throughput CV {:.2} — the run never reached steady \
                 state",
                run.rate_cv
            ),
            remedy: "lengthen the warm-up/measurement windows before trusting \
                     the numbers"
                .into(),
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncinv_metrics::ClassSummary;

    #[test]
    fn healthy_run_has_no_findings() {
        let run = RunSummary {
            completions: 1000,
            throughput: 500.0,
            writes_per_req: 1.0,
            spins_per_req: 0.0,
            cs_per_req: 0.5,
            rate_cv: 0.02,
            ..RunSummary::default()
        };
        assert!(diagnose(&run).is_empty());
    }

    #[test]
    fn spin_detected() {
        let run = RunSummary {
            writes_per_req: 73.0,
            spins_per_req: 66.0,
            ..RunSummary::default()
        };
        let f = diagnose(&run);
        assert!(f.iter().any(|x| x.pathology == Pathology::WriteSpin));
    }

    #[test]
    fn dispatch_overhead_detected() {
        let run = RunSummary {
            cs_per_req: 4.0,
            ..RunSummary::default()
        };
        let f = diagnose(&run);
        assert!(f.iter().any(|x| x.pathology == Pathology::DispatchOverhead));
        assert!(f[0].to_string().contains("remedy"));
    }

    #[test]
    fn latency_amplification_requires_latency() {
        let base = RunSummary {
            spins_per_req: 100.0,
            writes_per_req: 100.0,
            mean_rt_us: 2_000_000,
            ..RunSummary::default()
        };
        assert!(!diagnose(&base)
            .iter()
            .any(|x| x.pathology == Pathology::LatencyAmplifiedSpin));
        let with_latency = RunSummary {
            added_latency_us: 5_000,
            ..base
        };
        assert!(diagnose(&with_latency)
            .iter()
            .any(|x| x.pathology == Pathology::LatencyAmplifiedSpin));
    }

    #[test]
    fn hol_blocking_needs_heavy_neighbour() {
        let light = ClassSummary {
            class: "light".into(),
            response_bytes: 100,
            completions: 100,
            mean_rt_us: 500,
            p99_rt_us: 50_000,
        };
        let heavy = ClassSummary {
            class: "heavy".into(),
            response_bytes: 100 * 1024,
            completions: 10,
            mean_rt_us: 40_000,
            p99_rt_us: 60_000,
        };
        let run = RunSummary {
            per_class: vec![heavy.clone(), light.clone()],
            ..RunSummary::default()
        };
        assert!(diagnose(&run)
            .iter()
            .any(|x| x.pathology == Pathology::HeadOfLineBlocking));
        // Without the heavy class the same light tail is not HoL.
        let run = RunSummary {
            per_class: vec![light],
            ..RunSummary::default()
        };
        assert!(!diagnose(&run)
            .iter()
            .any(|x| x.pathology == Pathology::HeadOfLineBlocking));
    }

    #[test]
    fn unsteady_measurement_detected() {
        let run = RunSummary {
            completions: 10,
            rate_cv: 0.9,
            ..RunSummary::default()
        };
        assert!(diagnose(&run)
            .iter()
            .any(|x| x.pathology == Pathology::UnsteadyMeasurement));
    }
}
