//! Deterministic-order parallel execution of independent experiment cells.
//!
//! Every experiment cell in this workspace is a self-contained,
//! deterministic simulation: it owns its RNGs, queues and models, and
//! shares nothing with other cells. That makes a grid of cells perfectly
//! parallel — results are *identical* to a serial run cell-for-cell
//! (asserted by `tests/runner_parallel.rs`); only wall-clock time changes.
//!
//! [`parallel_map`] is the generic primitive: a work-stealing index loop
//! over `std::thread::scope` whose output order always matches input
//! order, regardless of which worker finishes first. [`run_cells`] applies
//! it to the `(server, size, concurrency)` grids used by every `fig*`,
//! `table*` and `ablation_*` harness binary (via
//! [`figures::sweep`](crate::figures::sweep)).
//!
//! # Thread-count selection
//!
//! [`configured_threads`] resolves, in order: the `ASYNCINV_THREADS`
//! environment variable, then [`std::thread::available_parallelism`]. The
//! harness binaries also accept `--threads N` on the command line (parsed
//! by `asyncinv-bench`, which forwards it through the environment so
//! `repro_all`'s child processes inherit it). `ASYNCINV_THREADS=1` forces
//! fully serial execution.

use asyncinv_metrics::RunSummary;
use asyncinv_servers::{Experiment, ServerKind};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::figures::Fidelity;

// The thread-count policy is defined once in `asyncinv-simcore` (the
// lowest layer every parallel driver already depends on) so the cell
// runner here and the parallel fleet driver resolve it identically.
pub use asyncinv_simcore::{configured_threads, THREADS_ENV};

/// Runs `f` over `items` on up to `threads` OS threads, returning outputs
/// in input order.
///
/// Work is distributed by an atomic index (work-stealing by competition),
/// so stragglers don't serialize the tail. Each worker collects
/// `(index, output)` pairs locally; outputs are placed into their slots
/// after all workers join, which keeps the function safe without per-slot
/// locking. With `threads <= 1` (or one item) this degenerates to a plain
/// serial loop with zero thread overhead.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut batches: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<O>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, out) in batches.drain(..).flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} ran twice");
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("cell not run"))
        .collect()
}

/// Runs a grid of independent `(server, size, concurrency)` cells on up to
/// `threads` OS threads; results are in grid order, identical to a serial
/// run.
pub fn run_cells(
    fid: Fidelity,
    cells: &[(ServerKind, usize, usize)],
    threads: usize,
) -> Vec<RunSummary> {
    parallel_map(cells, threads, |&(kind, size, conc)| {
        Experiment::new(fid.micro(conc, size)).run(kind)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        let parallel = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[96], 96 * 96);
    }

    #[test]
    fn thread_count_is_clamped_to_items() {
        // More threads than items must not deadlock or lose outputs.
        let out = parallel_map(&[1u32, 2], 64, |&x| x + 1);
        assert_eq!(out, [2, 3]);
        let empty: Vec<u32> = parallel_map(&[], 4, |x: &u32| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn run_cells_parallel_equals_serial() {
        let cells = [
            (ServerKind::SingleThread, 100, 4),
            (ServerKind::SyncThread, 100, 4),
            (ServerKind::NettyLike, 10 * 1024, 2),
        ];
        let serial = run_cells(Fidelity::Quick, &cells, 1);
        let parallel = run_cells(Fidelity::Quick, &cells, 3);
        assert_eq!(serial, parallel);
    }
}
