//! # asyncinv — asynchronous-invocation performance lab
//!
//! A full reproduction, as a deterministic discrete-event simulation, of
//! *"Improving Asynchronous Invocation Performance in Client-server
//! Systems"* (Zhang, Wang, Kanemasa — ICDCS 2018).
//!
//! The paper shows that asynchronous event-driven servers can lose to
//! plain thread-per-connection servers for two non-obvious reasons — the
//! **context-switch overhead** of one-event-one-handler processing flows
//! and the **write-spin problem** of non-blocking writes against the TCP
//! send buffer — and proposes **HybridNetty**, which profiles requests at
//! runtime and routes each down its most efficient execution path. This
//! crate is the public API over the substrates that reproduce all of it:
//!
//! * [`ServerKind`] — the six server architectures of the paper.
//! * [`Experiment`]/[`ExperimentConfig`] — closed-loop micro-benchmark
//!   cells (JMeter-style, paper Sections III–V).
//! * [`rubbos`] — the 3-tier RUBBoS macro-benchmark (paper Section II).
//! * [`figures`] — one preset per table/figure of the paper, returning
//!   structured results; the `asyncinv-bench` harness binaries print them.
//! * [`prelude`] — convenient glob import for examples and tests.
//!
//! # Quickstart
//!
//! ```
//! use asyncinv::prelude::*;
//!
//! // Compare the thread-based and single-threaded async servers on 0.1 KB
//! // responses at concurrency 8 (a cell of the paper's Fig 4a).
//! let mut cfg = ExperimentConfig::micro(8, 100);
//! cfg.warmup = SimDuration::from_millis(200);
//! cfg.measure = SimDuration::from_secs(1);
//! let exp = Experiment::new(cfg);
//! let sync = exp.run(ServerKind::SyncThread);
//! let single = exp.run(ServerKind::SingleThread);
//! assert!(single.throughput > sync.throughput);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advisor;
pub mod figures;
pub mod runner;

pub use asyncinv_metrics::{
    find_knee, fmt_f64, littles_law_residual, Align, Chart, ClassSummary, CpuShare, Histogram,
    RunSummary, Series, SweepPoint, Table, ThroughputWindow,
};
pub use asyncinv_servers::{
    Ctx, EngineEvent, Experiment, ExperimentConfig, HybridPath, ServerKind, ServerModel,
    ServiceProfile, ShedConfig, ShedPolicy,
};
pub use asyncinv_simcore::{BackendKind, SimDuration, SimRng, SimTime};

/// Deterministic fault injection and client resilience (see
/// `docs/resilience.md`).
pub mod fault {
    pub use asyncinv_fault::{
        apply, fault_code_name, CompiledPlan, ConnSelector, FaultEvent, FaultKind, FaultOp,
        FaultOutcome, FaultPlan, TimedOp,
    };
    pub use asyncinv_servers::{ShedConfig, ShedPolicy};
    pub use asyncinv_workload::{RetryBudget, RetryPolicy};
}

/// Sharded fleets: load balancing, hedged requests, per-shard fault and
/// shed planes (see `docs/fleet.md`).
pub mod fleet {
    pub use asyncinv_fleet::{
        fleet_audit, mix64, Balancer, BalancerKind, BrownoutSpec, Cluster, ConsistentHashRing,
        FleetConfig, FleetScenario, FleetSummary, HedgeConfig, HedgeEstimator, ParallelCluster,
        ParallelHealth, SchedulePlan, ScheduleTrace, ShardFault, ShardShed, ShardSummary,
        VirtualSched, WorkerHealth,
    };
}

/// Multi-tier async RPC service graphs over calibrated fleets (see
/// `docs/dag.md`).
pub mod dag {
    pub use asyncinv_dag::{
        calibrate_tier, dag_audit, dag_span_audit, ArrivalSpec, CalSpec, DagAttempt, DagOutcome,
        DagRun, DagSpan, DagSpanStatus, DagSummary, EdgeSpec, FleetDriver, ServiceGraph, SlowTier,
        TierCounters, TierProfile, TierSpec, EDGE_ROOT, LATTICE,
    };
}

/// The RUBBoS 3-tier macro benchmark (paper Section II / Fig 1).
pub mod rubbos {
    pub use asyncinv_servers::rubbos_engine::{InteractionSummary, RubbosExperiment, RubbosSummary};
    pub use asyncinv_workload::rubbos::{
        interactions, mean_response_bytes, Interaction, Navigator, RubbosConfig,
    };
}

/// Structured tracing, metrics and exporters (see `docs/observability.md`).
pub mod obs {
    pub use asyncinv_servers::trace_codes;
    pub use asyncinv_servers::{
        audit, AuditReport, MetricsRegistry, NoopObserver, Observer, Recorder, TraceEvent,
        TraceKind,
    };
    pub use asyncinv_obs::export::{chrome_trace_json, jsonl, validate_chrome_trace};
    pub use asyncinv_obs::{critical_path, span, span_export, AuditCheck, LogHistogram, TraceRing};
    pub use asyncinv_obs::{
        phase_color, span_audit, spans_chrome_json, spans_jsonl, validate_span_trace,
        AttemptKind, AttemptOutcome, AttemptSpan, Phase, PhaseBreakdown, PhaseSegment,
        RequestSpan, SpanAssembler, SpanAuditReport, SpanForest, SpanStatus,
    };
}

/// Workload building blocks re-exported for experiment construction.
pub mod workload {
    pub use asyncinv_workload::{
        ArrivalMode, ClientConfig, ClientEvent, ClientPool, Mix, PushModel, RequestClass,
        RequestSpec, RetryBudget, RetryPolicy, RtoEstimator, SizeDrift, Station,
        StationEvent, ThinkTime, TimeoutMode, UserId, ZipfSampler,
    };
}

/// Substrate models, exposed for custom experiments and ablations.
pub mod substrate {
    pub use asyncinv_cpu::{
        Burst, BurstKind, Completion, CoreId, CpuConfig, CpuEvent, CpuModel, CpuStats, SchedPolicy,
        CpuTimeBreakdown, StatsWindow, ThreadId,
    };
    pub use asyncinv_tcp::{
        ConnId, ConnStats, Connection, SendBufPolicy, TcpConfig, TcpEvent, TcpNotice, TcpWorld,
        WorldStats,
    };
}

/// Glob-import convenience: `use asyncinv::prelude::*;`.
pub mod prelude {
    pub use crate::figures::{self, Fidelity};
    pub use crate::runner;
    pub use crate::rubbos::{RubbosExperiment, RubbosSummary};
    pub use crate::substrate::{CpuConfig, SendBufPolicy, TcpConfig};
    pub use crate::workload::{Mix, ThinkTime};
    pub use crate::{
        Experiment, ExperimentConfig, RunSummary, ServerKind, ServiceProfile, SimDuration,
        SimTime, Table,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn public_api_round_trip() {
        let mut cfg = ExperimentConfig::micro(2, 100);
        cfg.warmup = SimDuration::from_millis(100);
        cfg.measure = SimDuration::from_millis(400);
        let s = Experiment::new(cfg).run(ServerKind::Hybrid);
        assert_eq!(s.server, "HybridNetty");
        assert!(s.completions > 0);
    }
}
