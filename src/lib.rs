//! # asyncinv-lab — workspace facade
//!
//! Re-exports every crate in the `asyncinv` workspace so the repository-level
//! `examples/` and `tests/` can exercise the whole system through one
//! dependency. See the [`asyncinv`] crate for the public API and the
//! repository `README.md`/`DESIGN.md` for the architecture overview.

#![forbid(unsafe_code)]

pub use asyncinv;
pub use asyncinv_cpu as cpu;
pub use asyncinv_metrics as metrics;
pub use asyncinv_rt as rt;
pub use asyncinv_servers as servers;
pub use asyncinv_simcore as simcore;
pub use asyncinv_tcp as tcp;
pub use asyncinv_workload as workload;
